//! Regenerates the paper's evaluation as text tables (experiments E1–E11
//! of DESIGN.md / EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p bench --bin report [n_mbs] [--json]
//! cargo run --release -p bench --bin report -- --e8-smoke
//! cargo run --release -p bench --bin report -- --e9-smoke
//! cargo run --release -p bench --bin report -- --e10-smoke
//! cargo run --release -p bench --bin report -- --e11-smoke
//! ```
//!
//! With `--json`, each experiment additionally writes a machine-readable
//! `BENCH_E<n>.json` next to the working directory (hand-rolled writer —
//! the build environment is offline, no serde).
//!
//! `--e8-smoke` runs only a scaled-down E8 gate (64-session attach storm:
//! the compile cache must be hit exactly once, transcripts must stay
//! byte-identical, and attach p99 must stay bounded) and exits nonzero on
//! any violation — this is what CI runs.
//!
//! `--e9-smoke` runs only the E9 throughput-bound gate at 8 macroblocks:
//! every variant/provisioning cell must finish and measure at or above the
//! static per-iteration bound, and `BENCH_E9.json` is (re)written — the
//! checked-in artifact is byte-stable because every field in it is a
//! deterministic simulation quantity.
//!
//! `--e10-smoke` runs only the E10 differential-fuzz gate: 200 generated
//! apps through every oracle (zero divergences required) plus the DFA004
//! mutation self-check (must be caught and shrunk), and `BENCH_E10.json`
//! is (re)written — byte-stable for the same reason.
//!
//! `--e11-smoke` runs only the E11 multiverse-exploration gate: the
//! seeded deadlock and race variants must yield their MV701/MV702
//! witnesses and the pruned search must not explore more universes than
//! brute force; `BENCH_E11.json` is (re)written — wall-clock figures are
//! printed but never serialized, so the artifact stays byte-stable.

use std::fmt::Write as _;

use bench::{
    analyze_decoder, attach_load, checkpoint_overhead, fuzz_farm, fuzz_study, localization,
    mutation_study, reverse_continue_latency, row_label, run_overhead, scaling, server_load,
    throughput_study, verify_decoder, BoundRow, DebugConfig, FarmSummary, MutationOutcome,
};
use h264_pipeline::Bug;

/// Minimal JSON string escaping for our label/verdict strings.
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn write_json(path: &str, body: &str) {
    std::fs::write(path, body).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

/// The CI gate behind `--e8-smoke`: a scaled-down attach storm that must
/// compile once, fork everything else, stay byte-identical and keep the
/// attach tail latency bounded. The bound is deliberately generous for a
/// loaded single-core CI box — an uncached regression (64 sequential
/// recompiles) overshoots it by more than an order of magnitude.
fn run_e8_smoke() -> i32 {
    const SESSIONS: usize = 64;
    const ATTACH_P99_BOUND_MS: f64 = 500.0;
    println!("e8-smoke: {SESSIONS}-session attach storm (cached, 4 macroblocks)");
    let r = attach_load(SESSIONS, 4, true);
    let p99_ms = r.attach_p99.as_secs_f64() * 1e3;
    println!(
        "e8-smoke: setup {:.2}ms, attach p50 {:.2}ms p99 {:.2}ms, \
         cache hits {} misses {}, errors {}, isolated {}",
        r.setup.as_secs_f64() * 1e3,
        r.attach_p50.as_secs_f64() * 1e3,
        p99_ms,
        r.cache_hits,
        r.cache_misses,
        r.errors,
        r.isolated,
    );
    let mut failures = 0;
    if r.cache_misses != 1 {
        failures += 1;
        eprintln!(
            "e8-smoke: FAIL: expected exactly 1 compile, saw {} cache misses",
            r.cache_misses
        );
    }
    if !r.isolated {
        failures += 1;
        eprintln!("e8-smoke: FAIL: forked-session transcripts diverged from a fresh build");
    }
    if r.errors != 0 {
        failures += 1;
        eprintln!("e8-smoke: FAIL: {} session(s) errored", r.errors);
    }
    if p99_ms > ATTACH_P99_BOUND_MS {
        failures += 1;
        eprintln!("e8-smoke: FAIL: attach p99 {p99_ms:.2}ms > {ATTACH_P99_BOUND_MS}ms bound");
    }
    if failures == 0 {
        println!("e8-smoke: OK");
        0
    } else {
        eprintln!("e8-smoke: {failures} failure(s)");
        1
    }
}

/// Render the E9 table and the machine-readable rows.
fn e9_table(rows: &[BoundRow]) -> Vec<String> {
    println!(
        "{:<22} {:>5} {:>12} {:>10} {:>8} {:>8}  {:<24} holds",
        "variant", "mbs", "cycles", "per-iter", "bound", "margin", "bottleneck"
    );
    let mut out = Vec::new();
    for r in rows {
        let margin = if r.static_bound > 0 {
            format!("{:.1}x", r.margin)
        } else {
            "-".into()
        };
        println!(
            "{:<22} {:>5} {:>12} {:>10.1} {:>8} {:>8}  {:<24} {}",
            row_label(r),
            r.n_mbs,
            r.cycles,
            r.per_iteration,
            r.static_bound,
            margin,
            r.bottleneck,
            if r.bound_holds { "yes" } else { "NO" },
        );
        out.push(format!(
            "{{\"variant\": {}, \"capacities\": {}, \"n_mbs\": {}, \
             \"cycles\": {}, \"per_iteration\": {:.3}, \"static_bound\": {}, \
             \"margin\": {:.3}, \"bottleneck\": {}, \"bound_holds\": {}}}",
            jstr(server::variant_name(r.bug)),
            jstr(r.capacities),
            r.n_mbs,
            r.cycles,
            r.per_iteration,
            r.static_bound,
            r.margin,
            jstr(&r.bottleneck),
            r.bound_holds,
        ));
    }
    out
}

fn write_e9_json(rows: &[String], n_mbs: u64) {
    write_json(
        "BENCH_E9.json",
        &format!(
            "{{\"experiment\": \"E9\", \"n_mbs\": {n_mbs}, \"rows\": [{}]}}\n",
            rows.join(", ")
        ),
    );
}

/// The CI gate behind `--e9-smoke`: the static throughput bound must hold
/// dynamically for every E9 cell, at smoke scale. Always rewrites
/// `BENCH_E9.json` (deterministic fields only) so CI can diff it against
/// the checked-in artifact.
fn run_e9_smoke() -> i32 {
    const N_MBS: u64 = 8;
    println!("e9-smoke: static throughput bound vs. measured, {N_MBS} macroblocks");
    let rows = throughput_study(N_MBS);
    let json_rows = e9_table(&rows);
    write_e9_json(&json_rows, N_MBS);
    let violations = rows.iter().filter(|r| !r.bound_holds).count();
    if violations == 0 {
        println!("e9-smoke: OK");
        0
    } else {
        eprintln!("e9-smoke: FAIL: {violations} cell(s) measured below the static bound");
        1
    }
}

/// E10 parameters — shared by the smoke gate and the full report so the
/// `BENCH_E10.json` artifact is identical whichever path wrote it.
const E10_ITERS: u64 = 200;
const E10_SEED: &str = "e10";
const E10_MUTATE_ITERS: u64 = 60;
const E10_MUTATE_SEED: &str = "e10-mutate";
const E10_MAX_WITNESS: u64 = 6;

/// Render the E10 tables; returns the summary and mutation outcome.
fn e10_tables() -> (FarmSummary, MutationOutcome) {
    let s = fuzz_study(E10_ITERS, fuzz_farm::seed_of(E10_SEED));
    let apps_per_sec = s.iters as f64 / s.wall.as_secs_f64().max(1e-9);
    println!(
        "{} generated apps (seed \"{E10_SEED}\"), {:.1} apps/sec",
        s.iters, apps_per_sec
    );
    println!(
        "{:<10} {:>6}   {:<10} {:>6}",
        "oracle", "diverg", "outcome", "apps"
    );
    let outcomes: Vec<_> = s.outcomes.iter().collect();
    for (i, oracle) in fuzz_farm::ORACLES.iter().enumerate() {
        let (olabel, ocount) = outcomes
            .get(i)
            .map(|(l, c)| (l.as_str(), **c))
            .unwrap_or(("", 0));
        let right = if olabel.is_empty() {
            String::new()
        } else {
            format!("{olabel:<10} {ocount:>6}")
        };
        println!("{:<10} {:>6}   {right}", oracle, s.divergences[*oracle]);
    }
    println!(
        "squeeze arms {} links, throughput bounds {}, replay fixpoints {}, \
         explore agreements {}",
        s.squeezed_links, s.throughput_checks, s.replay_checks, s.explore_checks
    );
    let m = mutation_study(E10_MUTATE_ITERS, fuzz_farm::seed_of(E10_MUTATE_SEED));
    if m.caught {
        println!(
            "mutation dfa004: caught at iteration {} by {}, witness {} filters ({:.2}ms)",
            m.caught_at,
            m.oracle,
            m.witness_filters,
            m.wall.as_secs_f64() * 1e3,
        );
    } else {
        println!("mutation dfa004: NOT caught in {E10_MUTATE_ITERS} iterations");
    }
    (s, m)
}

fn write_e10_json(s: &FarmSummary, m: &MutationOutcome) {
    let kv = |map: &std::collections::BTreeMap<String, u64>| {
        map.iter()
            .map(|(k, v)| format!("{}: {v}", jstr(k)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    write_json(
        "BENCH_E10.json",
        &format!(
            "{{\"experiment\": \"E10\", \"iters\": {}, \"seed\": {}, \
             \"divergences\": {{{}}}, \"outcomes\": {{{}}}, \"shapes\": {{{}}}, \
             \"squeezed_links\": {}, \"throughput_checks\": {}, \
             \"replay_checks\": {}, \"explore_checks\": {}, \
             \"mutation\": {{\"rule\": \"DFA004\", \
             \"seed\": {}, \"caught\": {}, \"caught_at\": {}, \"oracle\": {}, \
             \"witness_filters\": {}}}}}\n",
            s.iters,
            jstr(E10_SEED),
            kv(&s.divergences),
            kv(&s.outcomes),
            kv(&s.shapes),
            s.squeezed_links,
            s.throughput_checks,
            s.replay_checks,
            s.explore_checks,
            jstr(E10_MUTATE_SEED),
            m.caught,
            m.caught_at,
            jstr(&m.oracle),
            m.witness_filters,
        ),
    );
}

/// The CI gate behind `--e10-smoke`: zero divergences with the analyzers
/// intact, and the weakened DFA004 caught and shrunk small. Always
/// rewrites `BENCH_E10.json` (deterministic fields only) so CI can diff
/// it against the checked-in artifact.
fn run_e10_smoke() -> i32 {
    println!("e10-smoke: differential fuzz farm, {E10_ITERS} apps + mutation self-check");
    let (s, m) = e10_tables();
    write_e10_json(&s, &m);
    let mut failures = 0;
    if s.total_divergences() != 0 {
        failures += 1;
        eprintln!(
            "e10-smoke: FAIL: {} divergence(s) with the analyzers intact",
            s.total_divergences()
        );
    }
    if !m.caught {
        failures += 1;
        eprintln!("e10-smoke: FAIL: weakened DFA004 went unnoticed — the farm has no teeth");
    } else if m.witness_filters > E10_MAX_WITNESS {
        failures += 1;
        eprintln!(
            "e10-smoke: FAIL: witness has {} filters (> {E10_MAX_WITNESS})",
            m.witness_filters
        );
    }
    if failures == 0 {
        println!("e10-smoke: OK");
        0
    } else {
        eprintln!("e10-smoke: {failures} failure(s)");
        1
    }
}

/// Render the E11 table (wall-clock figures printed only) and the
/// machine-readable rows (deterministic fields only).
fn e11_tables() -> Vec<bench::ExploreRow> {
    let rows = bench::explore_study().unwrap_or_else(|e| panic!("E11 exploration failed: {e}"));
    println!(
        "{:<14} {:<9} {:>6} {:>9} {:>8} {:>7} {:>12} {:>12}  witness",
        "row", "until", "univ", "pruned", "sleep", "points", "univ/sec", "to-witness"
    );
    for r in &rows {
        println!(
            "{:<14} {:<9} {:>6} {:>9} {:>8} {:>7} {:>12.1} {:>10.2}ms  {}",
            r.label,
            r.until,
            r.stats.universes_explored,
            r.stats.universes_pruned,
            r.stats.sleep_set_hits,
            r.stats.actor_points + r.stats.dma_points,
            r.universes_per_sec(),
            r.wall.as_secs_f64() * 1e3,
            r.witness.as_deref().unwrap_or("-"),
        );
    }
    println!(
        "pruning ratio (race brute-force / optimized universes): {:.2}x",
        bench::pruning_ratio(&rows)
    );
    rows
}

fn write_e11_json(rows: &[bench::ExploreRow]) {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"label\": {}, \"until\": {}, \"optimized\": {}, \
                 \"witness\": {}, \"witness_overrides\": {}, \
                 \"universes_forked\": {}, \"universes_explored\": {}, \
                 \"universes_pruned\": {}, \"sleep_set_hits\": {}, \
                 \"actor_points\": {}, \"dma_points\": {}, \
                 \"space_covered\": {}}}",
                jstr(&r.label),
                jstr(&r.until),
                r.optimized,
                r.witness.as_deref().map_or("null".to_string(), jstr),
                r.witness_overrides,
                r.stats.universes_forked,
                r.stats.universes_explored,
                r.stats.universes_pruned,
                r.stats.sleep_set_hits,
                r.stats.actor_points,
                r.stats.dma_points,
                r.space_covered,
            )
        })
        .collect();
    write_json(
        "BENCH_E11.json",
        &format!(
            "{{\"experiment\": \"E11\", \"n_mbs\": {}, \"rows\": [{}], \
             \"pruning_ratio\": {:.2}}}\n",
            bench::E11_N_MBS,
            body.join(", "),
            bench::pruning_ratio(rows),
        ),
    );
}

/// The CI gate behind `--e11-smoke`: the seeded deadlock must yield the
/// trivial MV701 witness, both race hunts must find an MV702 witness, and
/// the optimized search must never run more universes than brute force.
/// Always rewrites `BENCH_E11.json` (deterministic fields only) so CI can
/// diff it against the checked-in artifact.
fn run_e11_smoke() -> i32 {
    println!(
        "e11-smoke: multiverse exploration, {} macroblocks",
        bench::E11_N_MBS
    );
    let rows = e11_tables();
    write_e11_json(&rows);
    let mut failures = 0;
    let witness_of = |label: &str| {
        rows.iter()
            .find(|r| r.label == label)
            .and_then(|r| r.witness.clone())
            .unwrap_or_default()
    };
    if !witness_of("deadlock").contains("MV701") {
        failures += 1;
        eprintln!("e11-smoke: FAIL: deadlock row found no MV701 witness");
    }
    if rows
        .iter()
        .find(|r| r.label == "deadlock")
        .is_some_and(|r| r.witness_overrides != 0)
    {
        failures += 1;
        eprintln!("e11-smoke: FAIL: the reference deadlock needed schedule overrides");
    }
    for label in ["race", "race-noprune"] {
        if !witness_of(label).contains("MV702") {
            failures += 1;
            eprintln!("e11-smoke: FAIL: {label} row found no MV702 witness");
        }
    }
    let explored = |label: &str| {
        rows.iter()
            .find(|r| r.label == label)
            .map_or(0, |r| r.stats.universes_explored)
    };
    if explored("race") > explored("race-noprune") {
        failures += 1;
        eprintln!(
            "e11-smoke: FAIL: optimized search ran more universes ({}) than brute force ({})",
            explored("race"),
            explored("race-noprune")
        );
    }
    if failures == 0 {
        println!("e11-smoke: OK");
        0
    } else {
        eprintln!("e11-smoke: {failures} failure(s)");
        1
    }
}

fn main() {
    let mut n_mbs: u64 = 64;
    let mut json = false;
    for a in std::env::args().skip(1) {
        if a == "--json" {
            json = true;
        } else if a == "--e8-smoke" {
            std::process::exit(run_e8_smoke());
        } else if a == "--e9-smoke" {
            std::process::exit(run_e9_smoke());
        } else if a == "--e10-smoke" {
            std::process::exit(run_e10_smoke());
        } else if a == "--e11-smoke" {
            std::process::exit(run_e11_smoke());
        } else if let Ok(n) = a.parse() {
            n_mbs = n;
        } else {
            eprintln!(
                "usage: report [n_mbs] [--json] [--e8-smoke] [--e9-smoke] [--e10-smoke] \
                 [--e11-smoke] (got `{a}`)"
            );
            std::process::exit(1);
        }
    }

    println!("=====================================================================");
    println!("E1  Debugger intrusiveness (§V): decode of {n_mbs} macroblocks");
    println!("=====================================================================");
    println!(
        "{:<28} {:>12} {:>12} {:>9} {:>8}",
        "configuration", "wall time", "sim cycles", "tokens", "slowdown"
    );
    let mut baseline_wall = None;
    let mut e1 = Vec::new();
    for cfg in DebugConfig::ALL {
        // Warm-up run, then the measured run (reduces allocator noise).
        let _ = run_overhead(cfg, n_mbs.min(8));
        let r = run_overhead(cfg, n_mbs);
        let base = *baseline_wall.get_or_insert(r.wall.as_secs_f64());
        let slowdown = r.wall.as_secs_f64() / base;
        println!(
            "{:<28} {:>10.2}ms {:>12} {:>9} {:>7.2}x",
            cfg.label(),
            r.wall.as_secs_f64() * 1e3,
            r.cycles,
            r.tokens_tracked,
            slowdown,
        );
        e1.push(format!(
            "{{\"config\": {}, \"wall_ms\": {:.3}, \"cycles\": {}, \
             \"tokens\": {}, \"slowdown\": {:.3}}}",
            jstr(cfg.label()),
            r.wall.as_secs_f64() * 1e3,
            r.cycles,
            r.tokens_tracked,
            slowdown,
        ));
    }
    if json {
        write_json(
            "BENCH_E1.json",
            &format!(
                "{{\"experiment\": \"E1\", \"n_mbs\": {n_mbs}, \"rows\": [{}]}}\n",
                e1.join(", ")
            ),
        );
    }
    println!(
        "\nShape check (paper §V): all-breakpoints is the most expensive \
         mode;\nthe mitigations recover most of the gap while keeping the \
         control\nbreakpoints (option 1) or full visibility (cooperation)."
    );

    println!();
    println!("=====================================================================");
    println!("E2  Bug localization (§VI-F): dataflow-aware vs source-level");
    println!("=====================================================================");
    println!(
        "{:<16} {:<16} {:>13} {:>10}  verdict",
        "bug class", "strategy", "interactions", "wall"
    );
    let mut results = localization::full_study();
    results.sort_by_key(|r| (format!("{:?}", r.bug), r.strategy.label().to_string()));
    let mut e2 = Vec::new();
    for r in &results {
        println!(
            "{:<16} {:<16} {:>13} {:>8.1}ms  {}{}",
            format!("{:?}", r.bug),
            r.strategy.label(),
            r.interactions,
            r.wall.as_secs_f64() * 1e3,
            if r.located { "" } else { "NOT LOCATED: " },
            r.verdict,
        );
        e2.push(format!(
            "{{\"bug\": {}, \"strategy\": {}, \"interactions\": {}, \
             \"wall_ms\": {:.3}, \"located\": {}, \"verdict\": {}}}",
            jstr(&format!("{:?}", r.bug)),
            jstr(r.strategy.label()),
            r.interactions,
            r.wall.as_secs_f64() * 1e3,
            r.located,
            jstr(&r.verdict),
        ));
    }
    if json {
        write_json(
            "BENCH_E2.json",
            &format!(
                "{{\"experiment\": \"E2\", \"rows\": [{}]}}\n",
                e2.join(", ")
            ),
        );
    }
    println!(
        "\nShape check (paper §VI-F): the dataflow-aware debugger needs a \
         handful\nof interactions per bug; the source-level procedure \
         locates the same\nfaults but through manual counting and \
         per-stop inspection."
    );

    println!();
    println!("=====================================================================");
    println!("E3  Event-capture hot-path scaling");
    println!("=====================================================================");
    println!("{:<16} {:>14}", "catchpoints", "per event");
    let pts = scaling::catchpoint_scaling(&[0, 1, 4, 16, 64, 256], 50_000);
    let base = pts[0].ns_per_event;
    let mut e3 = Vec::new();
    for p in &pts {
        println!(
            "{:<16} {:>11.1} ns  ({:.2}x)",
            p.catchpoints,
            p.ns_per_event,
            p.ns_per_event / base,
        );
        e3.push(format!(
            "{{\"catchpoints\": {}, \"ns_per_event\": {:.2}}}",
            p.catchpoints, p.ns_per_event
        ));
    }
    let storm = scaling::bounded_storm(200_000, 1 << 10);
    println!(
        "\ntoken storm: {} allocated, {} live (limit {}), {} evicted, \
         provenance {}",
        storm.allocated,
        storm.live,
        storm.limit,
        storm.evicted,
        if storm.provenance_intact {
            "intact"
        } else {
            "BROKEN"
        },
    );
    if json {
        write_json(
            "BENCH_E3.json",
            &format!(
                "{{\"experiment\": \"E3\", \"points\": [{}], \"storm\": \
                 {{\"allocated\": {}, \"live\": {}, \"limit\": {}, \
                 \"evicted\": {}, \"provenance_intact\": {}}}}}\n",
                e3.join(", "),
                storm.allocated,
                storm.live,
                storm.limit,
                storm.evicted,
                storm.provenance_intact,
            ),
        );
    }
    println!(
        "\nShape check: per-event cost stays roughly flat as idle \
         catchpoints\ngrow (indexed dispatch, not a linear scan), and a \
         token storm far\npast the record limit keeps a bounded live set."
    );

    println!();
    println!("=====================================================================");
    println!("E4  Static analyzer: cost and coverage per decoder variant");
    println!("=====================================================================");
    println!(
        "{:<14} {:>10} {:>7} {:>6} {:>8} {:>9} {:>7}  rules",
        "variant", "wall", "actors", "links", "kernels", "findings", "errors"
    );
    let mut e4 = Vec::new();
    for bug in [Bug::None, Bug::RateMismatch, Bug::Deadlock] {
        let r = analyze_decoder(bug, 5);
        println!(
            "{:<14} {:>8.2}ms {:>7} {:>6} {:>8} {:>9} {:>7}  {}",
            format!("{bug:?}"),
            r.wall.as_secs_f64() * 1e3,
            r.actors,
            r.links,
            r.kernels,
            r.findings,
            r.errors,
            if r.rules_hit.is_empty() {
                "-".to_string()
            } else {
                r.rules_hit.join(",")
            },
        );
        e4.push(format!(
            "{{\"variant\": {}, \"wall_ms\": {:.3}, \"actors\": {}, \
             \"links\": {}, \"kernels\": {}, \"findings\": {}, \
             \"errors\": {}, \"rules\": [{}]}}",
            jstr(&format!("{bug:?}")),
            r.wall.as_secs_f64() * 1e3,
            r.actors,
            r.links,
            r.kernels,
            r.findings,
            r.errors,
            r.rules_hit
                .iter()
                .map(|s| jstr(s))
                .collect::<Vec<_>>()
                .join(", "),
        ));
    }
    if json {
        write_json(
            "BENCH_E4.json",
            &format!(
                "{{\"experiment\": \"E4\", \"rows\": [{}]}}\n",
                e4.join(", ")
            ),
        );
    }
    println!(
        "\nShape check: the clean variant reports nothing, both seeded \
         bugs are\nflagged statically (DFA003), and a full pass costs \
         about a millisecond —\northogonal to, and vastly cheaper than, \
         the dynamic runs above."
    );

    println!();
    println!("=====================================================================");
    println!("E5  Bytecode verifier: memory-safety and race analysis cost");
    println!("=====================================================================");
    println!(
        "{:<14} {:>10} {:>10} {:>9} {:>7} {:>6}  rules",
        "variant", "wall", "functions", "findings", "errors", "races"
    );
    let mut e5 = Vec::new();
    for bug in [
        Bug::None,
        Bug::OobStore,
        Bug::SharedScratch,
        Bug::DmaOverlap,
    ] {
        let r = verify_decoder(bug, 5);
        println!(
            "{:<14} {:>8.2}ms {:>10} {:>9} {:>7} {:>6}  {}",
            format!("{bug:?}"),
            r.wall.as_secs_f64() * 1e3,
            r.functions,
            r.findings,
            r.errors,
            r.race_pairs,
            if r.rules_hit.is_empty() {
                "-".to_string()
            } else {
                r.rules_hit.join(",")
            },
        );
        e5.push(format!(
            "{{\"variant\": {}, \"wall_ms\": {:.3}, \"functions\": {}, \
             \"findings\": {}, \"errors\": {}, \"races\": {}, \
             \"rules\": [{}]}}",
            jstr(&format!("{bug:?}")),
            r.wall.as_secs_f64() * 1e3,
            r.functions,
            r.findings,
            r.errors,
            r.race_pairs,
            r.rules_hit
                .iter()
                .map(|s| jstr(s))
                .collect::<Vec<_>>()
                .join(", "),
        ));
    }
    if json {
        write_json(
            "BENCH_E5.json",
            &format!(
                "{{\"experiment\": \"E5\", \"rows\": [{}]}}\n",
                e5.join(", ")
            ),
        );
    }
    println!(
        "\nShape check: the clean image verifies clean; the out-of-bounds \
         store,\nthe unsynchronised shared scratch and the DMA-window \
         overlap are each\ncaught before the first instruction executes, \
         for about a millisecond\nper full pass — the static half of the \
         watchpoint sessions in E2."
    );

    println!();
    println!("=====================================================================");
    println!("E6  Time travel: recording cost per interval, reverse latency");
    println!("=====================================================================");
    println!(
        "{:<16} {:>10} {:>12} {:>13} {:>8} {:>9}",
        "interval", "setup", "run wall", "checkpoints", "pages", "overhead"
    );
    let curve = checkpoint_overhead(n_mbs, &[1_000, 5_000, 10_000, 50_000]);
    let mut e6 = Vec::new();
    for p in &curve {
        println!(
            "{:<16} {:>8.2}ms {:>10.2}ms {:>13} {:>8} {:>8.2}x",
            if p.interval == 0 {
                "off (control)".to_string()
            } else {
                format!("{} cycles", p.interval)
            },
            p.setup.as_secs_f64() * 1e3,
            p.wall.as_secs_f64() * 1e3,
            p.checkpoints,
            p.pages_stored,
            p.overhead,
        );
        e6.push(format!(
            "{{\"interval\": {}, \"setup_ms\": {:.3}, \"wall_ms\": {:.3}, \
             \"cycles\": {}, \"checkpoints\": {}, \"pages_stored\": {}, \
             \"overhead\": {:.4}}}",
            p.interval,
            p.setup.as_secs_f64() * 1e3,
            p.wall.as_secs_f64() * 1e3,
            p.cycles,
            p.checkpoints,
            p.pages_stored,
            p.overhead,
        ));
    }
    let rev = reverse_continue_latency(n_mbs, 10_000);
    println!(
        "\nreverse-continue from the end (interval 10k): {:.2}ms, rewound \
         {} cycles",
        rev.wall.as_secs_f64() * 1e3,
        rev.rewound_cycles,
    );
    if json {
        write_json(
            "BENCH_E6.json",
            &format!(
                "{{\"experiment\": \"E6\", \"n_mbs\": {n_mbs}, \
                 \"points\": [{}], \"reverse_continue\": {{\"interval\": {}, \
                 \"wall_ms\": {:.3}, \"rewound_cycles\": {}}}}}\n",
                e6.join(", "),
                rev.interval,
                rev.wall.as_secs_f64() * 1e3,
                rev.rewound_cycles,
            ),
        );
    }
    println!(
        "\nShape check (EXPERIMENTS.md E6): setup (full baseline image + \
         hash) is\na one-time per-session cost; the steady-state \
         recording overhead at the\ndefault 10k-cycle interval stays \
         within the 10% gate. Denser intervals\nbuy shorter replays \
         (reverse latency is bounded by one restore plus at\nmost two \
         interval-long replays) at a steeper recording cost."
    );

    println!();
    println!("=====================================================================");
    println!("E7  Remote debug server: concurrent scripted diagnoses over TCP");
    println!("=====================================================================");
    println!(
        "{:<10} {:>10} {:>13} {:>12} {:>12} {:>9} {:>9} {:>7}  isolated",
        "sessions",
        "wall",
        "sessions/s",
        "attach p50",
        "attach p99",
        "cmd p50",
        "cmd p99",
        "errors"
    );
    let mut e7 = Vec::new();
    for n_sessions in [1, 4, 16] {
        let r = server_load(n_sessions, 8);
        println!(
            "{:<10} {:>8.2}ms {:>13.2} {:>10.2}ms {:>10.2}ms {:>7.2}ms {:>7.2}ms {:>7}  {}",
            r.sessions,
            r.wall.as_secs_f64() * 1e3,
            r.sessions_per_sec,
            r.attach_p50.as_secs_f64() * 1e3,
            r.attach_p99.as_secs_f64() * 1e3,
            r.p50.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
            r.errors,
            if r.isolated { "yes" } else { "NO" },
        );
        e7.push(format!(
            "{{\"sessions\": {}, \"wall_ms\": {:.3}, \
             \"sessions_per_sec\": {:.3}, \"commands\": {}, \
             \"errors\": {}, \"attach_mean_ms\": {:.3}, \
             \"attach_p50_ms\": {:.3}, \"attach_p99_ms\": {:.3}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"isolated\": {}}}",
            r.sessions,
            r.wall.as_secs_f64() * 1e3,
            r.sessions_per_sec,
            r.commands,
            r.errors,
            r.attach_mean.as_secs_f64() * 1e3,
            r.attach_p50.as_secs_f64() * 1e3,
            r.attach_p99.as_secs_f64() * 1e3,
            r.p50.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
            r.isolated,
        ));
    }
    if json {
        write_json(
            "BENCH_E7.json",
            &format!(
                "{{\"experiment\": \"E7\", \"rows\": [{}]}}\n",
                e7.join(", ")
            ),
        );
    }
    println!(
        "\nShape check: every remote transcript is byte-identical to the \
         in-process\nrun of the same script (isolation is structural — \
         thread-per-session, no\nshared simulator state), and throughput \
         scales with concurrent sessions\nrather than collapsing behind a \
         global lock. Attach (session setup) is\nreported separately from \
         steady-state command latency — the E6 discipline;\nE8 below \
         studies the attach column in depth."
    );

    println!();
    println!("=====================================================================");
    println!("E8  Attach-latency scaling: compile-once cache + forked sessions");
    println!("=====================================================================");
    println!(
        "{:<10} {:<10} {:>9} {:>10} {:>11} {:>12} {:>12} {:>9} {:>9} {:>9}  isolated",
        "sessions",
        "mode",
        "setup",
        "storm",
        "storm p99",
        "attach p50",
        "attach p99",
        "cmd p50",
        "cmd p99",
        "compiles"
    );
    let mut e8 = Vec::new();
    let mut cached_256_p99 = None;
    let mut uncached_256_p99 = None;
    for (n_sessions, cached) in [
        (1, true),
        (16, true),
        (256, true),
        (1000, true),
        (256, false),
    ] {
        let r = attach_load(n_sessions, 8, cached);
        // Baseline mode bypasses the cache, so every attach — the storm's
        // and the probe's — paid a full compile.
        let compiles = if cached {
            r.cache_misses
        } else {
            r.sessions as u64 + r.probes
        };
        let p99 = r.attach_p99.as_secs_f64() * 1e3;
        if n_sessions == 256 {
            if cached {
                cached_256_p99 = Some(p99);
            } else {
                uncached_256_p99 = Some(p99);
            }
        }
        println!(
            "{:<10} {:<10} {:>7.2}ms {:>8.2}ms {:>9.2}ms {:>10.2}ms {:>10.2}ms {:>7.2}ms \
             {:>7.2}ms {:>9}  {}",
            r.sessions,
            if cached { "cached" } else { "baseline" },
            r.setup.as_secs_f64() * 1e3,
            r.storm.as_secs_f64() * 1e3,
            r.storm_attach_p99.as_secs_f64() * 1e3,
            r.attach_p50.as_secs_f64() * 1e3,
            p99,
            r.steady_p50.as_secs_f64() * 1e3,
            r.steady_p99.as_secs_f64() * 1e3,
            compiles,
            if r.isolated { "yes" } else { "NO" },
        );
        e8.push(format!(
            "{{\"sessions\": {}, \"cached\": {}, \"setup_ms\": {:.3}, \
             \"storm_ms\": {:.3}, \"storm_attach_p50_ms\": {:.3}, \
             \"storm_attach_p99_ms\": {:.3}, \"attach_mean_ms\": {:.3}, \
             \"attach_p50_ms\": {:.3}, \"attach_p99_ms\": {:.3}, \
             \"probes\": {}, \"steady_p50_ms\": {:.3}, \
             \"steady_p99_ms\": {:.3}, \"compiles\": {}, \
             \"cache_hits\": {}, \"errors\": {}, \"isolated\": {}}}",
            r.sessions,
            r.cached,
            r.setup.as_secs_f64() * 1e3,
            r.storm.as_secs_f64() * 1e3,
            r.storm_attach_p50.as_secs_f64() * 1e3,
            r.storm_attach_p99.as_secs_f64() * 1e3,
            r.attach_mean.as_secs_f64() * 1e3,
            r.attach_p50.as_secs_f64() * 1e3,
            p99,
            r.probes,
            r.steady_p50.as_secs_f64() * 1e3,
            r.steady_p99.as_secs_f64() * 1e3,
            compiles,
            r.cache_hits,
            r.errors,
            r.isolated,
        ));
    }
    let speedup = match (cached_256_p99, uncached_256_p99) {
        (Some(c), Some(u)) if c > 0.0 => u / c,
        _ => 0.0,
    };
    println!(
        "\nattach p99 speedup at 256 sessions (baseline / cached): {speedup:.1}x \
         (gate: >= 10x)"
    );
    if json {
        write_json(
            "BENCH_E8.json",
            &format!(
                "{{\"experiment\": \"E8\", \"rows\": [{}], \
                 \"speedup_p99_at_256\": {speedup:.2}}}\n",
                e8.join(", ")
            ),
        );
    }
    println!(
        "\nShape check (EXPERIMENTS.md E8): one compile serves every session \
         of a\nvariant (the `compiles` column); `storm`/`storm p99` cover N \
         literally\nsimultaneous attaches (queueing included), while `attach \
         p50/p99` is a\nsingle probe client attaching at full density — the \
         per-attach cost with\nN sessions resident. The baseline row shows \
         the old recompile-per-attach\ncost at the same fan-in, and every \
         forked transcript is byte-identical\nto a freshly-built session's."
    );

    println!();
    println!("=====================================================================");
    println!("E9  Static throughput bound vs. measured throughput");
    println!("=====================================================================");
    let e9_rows = throughput_study(8);
    let e9_json = e9_table(&e9_rows);
    if json {
        write_e9_json(&e9_json, 8);
    }
    println!(
        "\nShape check (EXPERIMENTS.md E9): every cell measures at or above \
         the\nstatic per-iteration bound (`margin` >= 1x — the bound is a \
         sound lower\nbound, loose because it ignores framework and blocking \
         overhead), and\nsqueezing the clean decoder to its predicted minimal \
         capacities trades\ncycles for memory without ever crossing the bound."
    );

    println!();
    println!("=====================================================================");
    println!("E10 Differential fuzz farm: static verdicts vs. simulated truth");
    println!("=====================================================================");
    let (e10_summary, e10_mutation) = e10_tables();
    if json {
        write_e10_json(&e10_summary, &e10_mutation);
    }
    println!(
        "\nShape check (EXPERIMENTS.md E10): with the analyzers intact every \
         oracle\ndirection counts zero divergences over the generated apps; \
         deliberately\nweakening DFA004 is caught within the iteration budget \
         and the find\nshrinks to a witness small enough to read."
    );

    println!();
    println!("=====================================================================");
    println!("E11 Multiverse exploration: time-to-witness and pruning ratio");
    println!("=====================================================================");
    let e11_rows = e11_tables();
    if json {
        write_e11_json(&e11_rows);
    }
    println!(
        "\nShape check (EXPERIMENTS.md E11): the seeded deadlock is its own \
         witness\n(the default schedule wedges, no overrides needed); the \
         seeded race needs\nthe search to find an access-order flip with \
         divergent output, and the\nsleep-set/equivalence pruning reaches the \
         same witness while running a\nfraction of the brute-force universes."
    );
}
