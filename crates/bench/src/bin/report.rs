//! Regenerates the paper's evaluation as text tables (experiments E1 and
//! E2 of DESIGN.md / EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p bench --bin report
//! ```

use bench::{analyze_decoder, localization, run_overhead, scaling, verify_decoder, DebugConfig};
use h264_pipeline::Bug;

fn main() {
    let n_mbs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);

    println!("=====================================================================");
    println!("E1  Debugger intrusiveness (§V): decode of {n_mbs} macroblocks");
    println!("=====================================================================");
    println!(
        "{:<28} {:>12} {:>12} {:>9} {:>8}",
        "configuration", "wall time", "sim cycles", "tokens", "slowdown"
    );
    let mut baseline_wall = None;
    for cfg in DebugConfig::ALL {
        // Warm-up run, then the measured run (reduces allocator noise).
        let _ = run_overhead(cfg, n_mbs.min(8));
        let r = run_overhead(cfg, n_mbs);
        let base = *baseline_wall.get_or_insert(r.wall.as_secs_f64());
        println!(
            "{:<28} {:>10.2}ms {:>12} {:>9} {:>7.2}x",
            cfg.label(),
            r.wall.as_secs_f64() * 1e3,
            r.cycles,
            r.tokens_tracked,
            r.wall.as_secs_f64() / base,
        );
    }
    println!(
        "\nShape check (paper §V): all-breakpoints is the most expensive \
         mode;\nthe mitigations recover most of the gap while keeping the \
         control\nbreakpoints (option 1) or full visibility (cooperation)."
    );

    println!();
    println!("=====================================================================");
    println!("E2  Bug localization (§VI-F): dataflow-aware vs source-level");
    println!("=====================================================================");
    println!(
        "{:<16} {:<16} {:>13} {:>10}  verdict",
        "bug class", "strategy", "interactions", "wall"
    );
    let mut results = localization::full_study();
    results.sort_by_key(|r| (format!("{:?}", r.bug), r.strategy.label().to_string()));
    for r in &results {
        println!(
            "{:<16} {:<16} {:>13} {:>8.1}ms  {}{}",
            format!("{:?}", r.bug),
            r.strategy.label(),
            r.interactions,
            r.wall.as_secs_f64() * 1e3,
            if r.located { "" } else { "NOT LOCATED: " },
            r.verdict,
        );
    }
    println!(
        "\nShape check (paper §VI-F): the dataflow-aware debugger needs a \
         handful\nof interactions per bug; the source-level procedure \
         locates the same\nfaults but through manual counting and \
         per-stop inspection."
    );

    println!();
    println!("=====================================================================");
    println!("E3  Event-capture hot-path scaling");
    println!("=====================================================================");
    println!("{:<16} {:>14}", "catchpoints", "per event");
    let pts = scaling::catchpoint_scaling(&[0, 1, 4, 16, 64, 256], 50_000);
    let base = pts[0].ns_per_event;
    for p in &pts {
        println!(
            "{:<16} {:>11.1} ns  ({:.2}x)",
            p.catchpoints,
            p.ns_per_event,
            p.ns_per_event / base,
        );
    }
    let storm = scaling::bounded_storm(200_000, 1 << 10);
    println!(
        "\ntoken storm: {} allocated, {} live (limit {}), {} evicted, \
         provenance {}",
        storm.allocated,
        storm.live,
        storm.limit,
        storm.evicted,
        if storm.provenance_intact {
            "intact"
        } else {
            "BROKEN"
        },
    );
    println!(
        "\nShape check: per-event cost stays roughly flat as idle \
         catchpoints\ngrow (indexed dispatch, not a linear scan), and a \
         token storm far\npast the record limit keeps a bounded live set."
    );

    println!();
    println!("=====================================================================");
    println!("E4  Static analyzer: cost and coverage per decoder variant");
    println!("=====================================================================");
    println!(
        "{:<14} {:>10} {:>7} {:>6} {:>8} {:>9} {:>7}  rules",
        "variant", "wall", "actors", "links", "kernels", "findings", "errors"
    );
    for bug in [Bug::None, Bug::RateMismatch, Bug::Deadlock] {
        let r = analyze_decoder(bug, 5);
        println!(
            "{:<14} {:>8.2}ms {:>7} {:>6} {:>8} {:>9} {:>7}  {}",
            format!("{bug:?}"),
            r.wall.as_secs_f64() * 1e3,
            r.actors,
            r.links,
            r.kernels,
            r.findings,
            r.errors,
            if r.rules_hit.is_empty() {
                "-".to_string()
            } else {
                r.rules_hit.join(",")
            },
        );
    }
    println!(
        "\nShape check: the clean variant reports nothing, both seeded \
         bugs are\nflagged statically (DFA003), and a full pass costs \
         about a millisecond —\northogonal to, and vastly cheaper than, \
         the dynamic runs above."
    );

    println!();
    println!("=====================================================================");
    println!("E5  Bytecode verifier: memory-safety and race analysis cost");
    println!("=====================================================================");
    println!(
        "{:<14} {:>10} {:>10} {:>9} {:>7} {:>6}  rules",
        "variant", "wall", "functions", "findings", "errors", "races"
    );
    for bug in [
        Bug::None,
        Bug::OobStore,
        Bug::SharedScratch,
        Bug::DmaOverlap,
    ] {
        let r = verify_decoder(bug, 5);
        println!(
            "{:<14} {:>8.2}ms {:>10} {:>9} {:>7} {:>6}  {}",
            format!("{bug:?}"),
            r.wall.as_secs_f64() * 1e3,
            r.functions,
            r.findings,
            r.errors,
            r.race_pairs,
            if r.rules_hit.is_empty() {
                "-".to_string()
            } else {
                r.rules_hit.join(",")
            },
        );
    }
    println!(
        "\nShape check: the clean image verifies clean; the out-of-bounds \
         store,\nthe unsynchronised shared scratch and the DMA-window \
         overlap are each\ncaught before the first instruction executes, \
         for about a millisecond\nper full pass — the static half of the \
         watchpoint sessions in E2."
    );
}
