//! Experiment E9: static throughput bound vs. measured throughput.
//!
//! The `sched` analyzer promises that no schedule completes a graph
//! iteration in fewer than `period_lb` cycles (rep × BCET at the
//! bottleneck actor, each filter pinned to its own PE). This harness
//! measures real decodes — at the ADL capacities and squeezed down to the
//! predicted minimal capacities — and checks the promise: measured
//! cycles-per-iteration must never drop below the static bound. Everything
//! in a row except the analysis wall time is deterministic, so the table
//! doubles as a regression artifact (`BENCH_E9.json`).

use std::time::{Duration, Instant};

use h264_pipeline::{attach_env, build_decoder_with_caps, decoder_sources, Bug};
use p2012::PlatformConfig;

#[derive(Debug)]
pub struct BoundRow {
    pub bug: Bug,
    /// `"as-built"` (ADL capacities) or `"minimal"` (every analyzed FIFO
    /// at its predicted minimum).
    pub capacities: &'static str,
    pub n_mbs: u64,
    /// End-to-end simulated cycles of the finished decode.
    pub cycles: u64,
    /// `cycles / n_mbs` — the measured per-iteration cost.
    pub per_iteration: f64,
    /// The static lower bound on the steady-state period, in cycles.
    pub static_bound: u64,
    /// `per_iteration / static_bound` — how loose the bound is (≥ 1 when
    /// it holds; 0 when no bound was derivable).
    pub margin: f64,
    /// Qualified name of the predicted bottleneck actor.
    pub bottleneck: String,
    /// The soundness verdict: measured never beats the bound.
    pub bound_holds: bool,
    /// Wall time of the `sched::analyze` pass (build excluded).
    pub analysis_wall: Duration,
}

/// Run one E9 cell: analyze `bug`, rebuild at the chosen capacities, run
/// `n_mbs` macroblocks to completion, compare against the bound.
pub fn throughput_bound(bug: Bug, n_mbs: u64, minimal: bool) -> BoundRow {
    let empty = std::collections::BTreeMap::new();
    let (_sys, app) =
        build_decoder_with_caps(bug, n_mbs, PlatformConfig::default(), &empty).expect("build");
    let input = sched::AnalysisInput::from_app(&app, &decoder_sources(bug));
    let t0 = Instant::now();
    let report = sched::analyze(&input);
    let analysis_wall = t0.elapsed();
    let bottleneck = report
        .bottleneck
        .map(|a| app.graph.qualified_name(pedf::ActorId(a)))
        .unwrap_or_else(|| "-".into());

    let caps = if minimal {
        report.min_caps_by_label(&app.graph)
    } else {
        empty
    };
    let (mut sys, app) =
        build_decoder_with_caps(bug, n_mbs, PlatformConfig::default(), &caps).expect("rebuild");
    sys.boot(app.boot_entry).expect("boot");
    attach_env(&mut sys, &app, n_mbs, 0xbeef).expect("attach env");
    assert!(
        sys.run_to_quiescence(100_000_000),
        "E9 run did not finish ({bug:?}, {})",
        if minimal { "minimal" } else { "as-built" }
    );
    assert_eq!(sys.first_fault(), None);
    let cycles = sys.clock();
    let per_iteration = cycles as f64 / n_mbs as f64;
    BoundRow {
        bug,
        capacities: if minimal { "minimal" } else { "as-built" },
        n_mbs,
        cycles,
        per_iteration,
        static_bound: report.period_lb,
        margin: if report.period_lb > 0 {
            per_iteration / report.period_lb as f64
        } else {
            0.0
        },
        bottleneck,
        bound_holds: per_iteration >= report.period_lb as f64,
        analysis_wall,
    }
}

/// The full E9 table: the clean decoder at both provisioning levels, the
/// rate-mismatch variant as built (it completes, with backlog), and the
/// seeded tight-FIFO variant — which only completes at all once its
/// squeezed edge is raised back to the predicted minimum.
pub fn throughput_study(n_mbs: u64) -> Vec<BoundRow> {
    vec![
        throughput_bound(Bug::None, n_mbs, false),
        throughput_bound(Bug::None, n_mbs, true),
        throughput_bound(Bug::RateMismatch, n_mbs, false),
        throughput_bound(Bug::TightFifo, n_mbs, true),
    ]
}

/// Stable variant label for tables and JSON.
pub fn row_label(row: &BoundRow) -> String {
    format!("{} ({})", server::variant_name(row.bug), row.capacities)
}
