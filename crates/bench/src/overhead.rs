//! Experiment E1: debugger intrusiveness (§V).
//!
//! "Our frequent use of breakpoints introduces a slowdown in the
//! application. This is mainly due to the breakpoints related to data
//! exchanges." The paper implemented one mitigation (disabling the
//! data-exchange breakpoints until the critical part is reached) and
//! proposed a second (framework cooperation / actor-specific breakpoint
//! sets). We implement and measure all of them against the same decode.
//!
//! Every configuration decodes the identical stream and the harness
//! asserts the output checksum is unchanged — the debugger may slow the
//! *host* down, but never alters the simulated execution (the paper's
//! non-intrusiveness claim).

use std::time::{Duration, Instant};

use dfdbg::{Session, Stop};
use h264_pipeline::{build_decoder, golden, Bug};
use p2012::PlatformConfig;
use pedf::{EnvSink, EnvSource, ValueGen};

/// The measured configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DebugConfig {
    /// No debugger attached at all.
    Baseline,
    /// Debugger attached, every function breakpoint armed (the paper's
    /// default operating mode).
    AllBreakpoints,
    /// §V mitigation 1: data-exchange breakpoints disabled (control and
    /// scheduling breakpoints stay active).
    DisabledUntilCritical,
    /// §V mitigation 2 (variant A): data-exchange breakpoints restricted
    /// to one actor of interest (`pipe`).
    ActorSpecific,
    /// §V mitigation 2 (variant B): full framework cooperation — the
    /// runtime publishes events directly, no function breakpoints.
    FrameworkCooperation,
}

impl DebugConfig {
    pub const ALL: [DebugConfig; 5] = [
        DebugConfig::Baseline,
        DebugConfig::AllBreakpoints,
        DebugConfig::DisabledUntilCritical,
        DebugConfig::ActorSpecific,
        DebugConfig::FrameworkCooperation,
    ];

    pub fn label(self) -> &'static str {
        match self {
            DebugConfig::Baseline => "baseline (no debugger)",
            DebugConfig::AllBreakpoints => "all breakpoints",
            DebugConfig::DisabledUntilCritical => "data-exchange bps off",
            DebugConfig::ActorSpecific => "actor-specific bps (pipe)",
            DebugConfig::FrameworkCooperation => "framework cooperation",
        }
    }
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct OverheadResult {
    pub config: DebugConfig,
    pub wall: Duration,
    pub cycles: u64,
    pub checksum: u64,
    /// Token objects materialised in the debugger model (0 for baseline).
    pub tokens_tracked: usize,
}

const SEED: u32 = 0xbeef;

/// Decode `n_mbs` macroblocks under `config`; returns wall time and
/// checks output integrity against the golden model.
pub fn run_overhead(config: DebugConfig, n_mbs: u64) -> OverheadResult {
    let expect = golden::checksum(&golden::decode_stream(n_mbs as u32, SEED));
    let start = Instant::now();
    let (cycles, checksum, tokens) = match config {
        DebugConfig::Baseline => {
            let r = h264_pipeline::run_decoder(Bug::None, n_mbs, SEED, 200_000_000)
                .expect("baseline decode");
            assert!(r.finished);
            (r.cycles, r.checksum, 0)
        }
        _ => {
            let (sys, app) =
                build_decoder(Bug::None, n_mbs, PlatformConfig::default()).expect("build");
            let boot = app.boot_entry;
            let mut s = Session::attach(sys, app.info);
            match config {
                DebugConfig::DisabledUntilCritical => s.set_data_exchange_breakpoints(false),
                DebugConfig::ActorSpecific => {
                    // The filter of interest is known only after boot; set
                    // it right after.
                }
                DebugConfig::FrameworkCooperation => s.use_framework_cooperation(),
                _ => {}
            }
            s.boot(boot).expect("boot");
            if config == DebugConfig::ActorSpecific {
                let pipe = s.model.graph.actor_by_name("pipe").unwrap().id;
                s.set_actor_breakpoint_filter(Some(vec![pipe]));
            }
            s.sys
                .runtime
                .add_source(
                    EnvSource::new(app.boundary_in["bits_in"], 2, ValueGen::Lcg { state: SEED })
                        .with_limit(n_mbs),
                )
                .unwrap();
            s.sys
                .runtime
                .add_source(
                    EnvSource::new(
                        app.boundary_in["cfg_in"],
                        2,
                        ValueGen::Counter { next: 0, step: 1 },
                    )
                    .with_limit(n_mbs),
                )
                .unwrap();
            s.sys
                .runtime
                .add_sink(EnvSink::new(app.boundary_out["frame_out"], 1))
                .unwrap();
            loop {
                match s.run(50_000_000) {
                    Stop::Quiescent => break,
                    Stop::CycleLimit => panic!("decode did not finish"),
                    Stop::Deadlock => panic!("unexpected deadlock"),
                    _ => {}
                }
            }
            let sink = s
                .sys
                .runtime
                .sink_for(app.boundary_out["frame_out"])
                .unwrap();
            // Total allocations, not live count: the bounded store may
            // already have evicted old consumed tokens.
            (
                s.clock(),
                sink.checksum,
                s.model.tokens.allocated() as usize,
            )
        }
    };
    let wall = start.elapsed();
    assert_eq!(
        checksum,
        expect,
        "{}: the debugger altered the execution!",
        config.label()
    );
    OverheadResult {
        config,
        wall,
        cycles,
        checksum,
        tokens_tracked: tokens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_configuration_preserves_the_output() {
        let n = 10;
        let baseline = run_overhead(DebugConfig::Baseline, n);
        for cfg in DebugConfig::ALL {
            let r = run_overhead(cfg, n);
            assert_eq!(r.checksum, baseline.checksum, "{}", cfg.label());
            // Simulated time is identical in every configuration (the
            // debugger is an observer, not a participant); only the
            // moment quiescence is *detected* may differ by one cycle.
            assert!(
                r.cycles.abs_diff(baseline.cycles) <= 1,
                "{}: {} vs {}",
                cfg.label(),
                r.cycles,
                baseline.cycles
            );
        }
    }

    #[test]
    fn breakpoint_modes_track_the_expected_token_volume() {
        let n = 10;
        let all = run_overhead(DebugConfig::AllBreakpoints, n);
        let off = run_overhead(DebugConfig::DisabledUntilCritical, n);
        let actor = run_overhead(DebugConfig::ActorSpecific, n);
        // With data-exchange breakpoints off, only host-boundary tokens
        // are materialised (synthesised at boundary pops).
        assert!(
            off.tokens_tracked < all.tokens_tracked / 2,
            "off={} all={}",
            off.tokens_tracked,
            all.tokens_tracked
        );
        // Actor-specific tracking sits in between.
        assert!(
            actor.tokens_tracked < all.tokens_tracked,
            "actor={} all={}",
            actor.tokens_tracked,
            all.tokens_tracked
        );
        assert!(
            actor.tokens_tracked > off.tokens_tracked,
            "actor={} off={}",
            actor.tokens_tracked,
            off.tokens_tracked
        );
    }
}
