//! E11 — the multiverse exploration engine as an experiment: universes
//! per second, time-to-witness for the two seeded schedule-dependent
//! bugs, and what the DPOR-style pruning actually buys.
//!
//! Three measured rows:
//!
//! * `deadlock` — the §III decoder deadlock. Its default schedule already
//!   wedges, so exploration terminates on the trivial (empty-trace)
//!   witness after the reference universe: time-to-witness is the cost of
//!   one instrumented run.
//! * `race` — the seeded `SharedScratch` race, hunted with the full
//!   optimized search (sleep sets + equivalence pruning).
//! * `race-noprune` — the same hunt with both pruning mechanisms off:
//!   the denominator of the pruning-ratio column.
//!
//! Every serialized field (witness string, universe counts, decision
//! points) is a deterministic simulation quantity, so `BENCH_E11.json`
//! is byte-stable across runs and machines; wall-clock figures
//! (universes/sec, time-to-witness in ms) are printed but never written.

use std::time::{Duration, Instant};

use h264_pipeline::Bug;
use server::session::build_app;

/// Decoder size every E11 row explores at — small enough that a row is a
/// sub-second affair, big enough that the §III bugs manifest.
pub const E11_N_MBS: u64 = 4;

/// One measured exploration row.
#[derive(Debug, Clone)]
pub struct ExploreRow {
    /// Row label (`deadlock`, `race`, `race-noprune`).
    pub label: String,
    /// What the search hunted (engine `Until` label).
    pub until: String,
    /// Whether sleep sets + equivalence pruning were on.
    pub optimized: bool,
    /// The witness found (string form), if any.
    pub witness: Option<String>,
    /// Overrides in the witness (0 = default schedule fails by itself).
    pub witness_overrides: usize,
    pub stats: multiverse::ExploreStats,
    pub space_covered: bool,
    /// Wall time of the whole exploration (reporting only).
    pub wall: Duration,
}

impl ExploreRow {
    pub fn universes_per_sec(&self) -> f64 {
        self.stats.universes_explored as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Build the variant fresh (uncached — E11 measures the search, not the
/// attach path), derive the RACE401 watch sites exactly as the `explore`
/// command does, and run one exploration.
fn explore_variant(
    label: &str,
    bug: Bug,
    until: multiverse::Until,
    optimized: bool,
) -> Result<ExploreRow, String> {
    let (app, mut session) = build_app(bug, E11_N_MBS)?;
    let bcv_rep = bcv::verify(&bcv::AnalysisInput::from_app(&app));
    let race_sites = bcv_rep
        .race_sites
        .iter()
        .map(|s| multiverse::RaceSite {
            lo: s.lo,
            hi: s.hi,
            actors: (s.a.0, s.b.0),
            label: format!(
                "{} <-> {}",
                app.graph.qualified_name(s.a),
                app.graph.qualified_name(s.b)
            ),
        })
        .collect();
    let cfg = multiverse::ExploreConfig {
        until,
        sleep_sets: optimized,
        prune_equivalent: optimized,
        race_sites,
        anchor: session.state_hash(),
        ..Default::default()
    };
    let root = session.sys.fork();
    let t0 = Instant::now();
    let report = multiverse::explore(root, &cfg);
    let wall = t0.elapsed();
    Ok(ExploreRow {
        label: label.to_string(),
        until: until.label().to_string(),
        optimized,
        witness: report.witness.as_ref().map(|w| w.to_string()),
        witness_overrides: report.witness.as_ref().map_or(0, |w| w.overrides.len()),
        stats: report.stats,
        space_covered: report.space_covered,
        wall,
    })
}

/// Run the three E11 rows. Deterministic apart from the `wall` fields.
pub fn explore_study() -> Result<Vec<ExploreRow>, String> {
    Ok(vec![
        explore_variant("deadlock", Bug::Deadlock, multiverse::Until::Deadlock, true)?,
        explore_variant("race", Bug::SharedScratch, multiverse::Until::Race, true)?,
        explore_variant(
            "race-noprune",
            Bug::SharedScratch,
            multiverse::Until::Race,
            false,
        )?,
    ])
}

/// Universes the unpruned hunt ran for every universe the optimized hunt
/// ran — the headline DPOR number (1.0 = pruning bought nothing).
pub fn pruning_ratio(rows: &[ExploreRow]) -> f64 {
    let fast = rows
        .iter()
        .find(|r| r.label == "race")
        .map_or(0, |r| r.stats.universes_explored);
    let brute = rows
        .iter()
        .find(|r| r.label == "race-noprune")
        .map_or(0, |r| r.stats.universes_explored);
    if fast == 0 {
        return 0.0;
    }
    brute as f64 / fast as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The E11 rows are the deterministic surface `BENCH_E11.json` is
    /// diffed on: two runs must agree on every serialized field, the two
    /// seeded bugs must be witnessed, and pruning must actually prune.
    #[test]
    fn explore_rows_are_deterministic_and_witness_the_seeded_bugs() {
        let a = explore_study().expect("study runs");
        let b = explore_study().expect("study runs again");
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.witness, y.witness, "row {}: witness drifted", x.label);
            assert_eq!(x.stats, y.stats, "row {}: stats drifted", x.label);
            assert_eq!(x.space_covered, y.space_covered);
        }
        assert!(
            a[0].witness.as_deref().is_some_and(|w| w.contains("MV701")),
            "deadlock row must witness MV701: {:?}",
            a[0].witness
        );
        assert!(
            a[1].witness.as_deref().is_some_and(|w| w.contains("MV702")),
            "race row must witness MV702: {:?}",
            a[1].witness
        );
        assert!(
            pruning_ratio(&a) >= 1.0,
            "optimized search ran more universes than brute force"
        );
    }
}
