//! Experiment E7: remote debug-server load.
//!
//! Drives N concurrent TCP sessions, each replaying the scripted §III
//! deadlock diagnosis end to end (attach, static analysis, run to the
//! deadlock, inspect filters/links, inject the missing token, run to
//! completion, checkpoint). The harness reports throughput
//! (sessions/sec), per-command latency quantiles, and — the property the
//! server exists to guarantee — *isolation*: every remote transcript must
//! be byte-identical to the in-process run of the same script.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use h264_pipeline::Bug;

// The bench crate's own module is also called `server`, so the debug
// server crate must be named from the crate root.
use ::server::{local_transcript, Client, Server, ServerConfig, DEADLOCK_SCRIPT};

/// Aggregate result of one load run.
#[derive(Debug, Clone)]
pub struct ServerLoadResult {
    pub sessions: usize,
    /// Wall time from releasing all clients to the last disconnect.
    pub wall: Duration,
    pub sessions_per_sec: f64,
    /// Total debug commands executed across all sessions (excludes
    /// `attach`, which is timed separately).
    pub commands: u64,
    /// Commands the server answered with `ok: false`.
    pub errors: u64,
    /// Mean `attach` latency — the dominant per-session cost (builds the
    /// whole simulator, runs both static analyses).
    pub attach_mean: Duration,
    /// Per-command latency quantiles across every session's commands.
    pub p50: Duration,
    pub p99: Duration,
    /// True iff every remote transcript was byte-identical to the
    /// in-process reference run (zero cross-session interference).
    pub isolated: bool,
}

struct WorkerResult {
    attach: Duration,
    latencies: Vec<Duration>,
    transcript: String,
    errors: u64,
}

fn drive_session(addr: std::net::SocketAddr, n_mbs: u64) -> Result<WorkerResult, String> {
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let t = Instant::now();
    let reply = client.request(&format!("attach deadlock {n_mbs}"))?;
    let attach = t.elapsed();
    if !reply.ok {
        return Err(format!("attach failed: {}", reply.output));
    }
    let mut latencies = Vec::with_capacity(DEADLOCK_SCRIPT.len());
    let mut transcript = String::new();
    let mut errors = 0;
    for cmd in DEADLOCK_SCRIPT {
        let t = Instant::now();
        let reply = client.request(cmd)?;
        latencies.push(t.elapsed());
        if !reply.ok {
            errors += 1;
        }
        transcript.push_str(&reply.output);
        transcript.push('\n');
    }
    let _ = client.request("quit");
    Ok(WorkerResult {
        attach,
        latencies,
        transcript,
        errors,
    })
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run `n_sessions` concurrent scripted diagnoses against one server
/// instance and aggregate throughput, latency and isolation.
pub fn server_load(n_sessions: usize, n_mbs: u64) -> ServerLoadResult {
    let reference = local_transcript(Bug::Deadlock, n_mbs, DEADLOCK_SCRIPT)
        .expect("in-process reference transcript");

    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let shared = server.shared();
    let server_thread = std::thread::spawn(move || server.run());

    // All clients connect behind a barrier so the measured window starts
    // with every session in flight, not with a connect ramp.
    let start_line = Arc::new(Barrier::new(n_sessions + 1));
    let workers: Vec<_> = (0..n_sessions)
        .map(|_| {
            let start_line = Arc::clone(&start_line);
            std::thread::spawn(move || {
                start_line.wait();
                drive_session(addr, n_mbs)
            })
        })
        .collect();
    start_line.wait();
    let t0 = Instant::now();
    let results: Vec<WorkerResult> = workers
        .into_iter()
        .map(|w| w.join().expect("worker panicked").expect("session failed"))
        .collect();
    let wall = t0.elapsed();

    shared.request_shutdown();
    let _ = server_thread.join();

    let mut latencies: Vec<Duration> = results.iter().flat_map(|r| r.latencies.clone()).collect();
    latencies.sort();
    let attach_total: Duration = results.iter().map(|r| r.attach).sum();
    ServerLoadResult {
        sessions: n_sessions,
        wall,
        sessions_per_sec: n_sessions as f64 / wall.as_secs_f64(),
        commands: latencies.len() as u64,
        errors: results.iter().map(|r| r.errors).sum(),
        attach_mean: attach_total / n_sessions.max(1) as u32,
        p50: quantile(&latencies, 0.50),
        p99: quantile(&latencies, 0.99),
        isolated: results.iter().all(|r| r.transcript == reference),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_sessions_stay_isolated() {
        let r = server_load(4, 4);
        assert_eq!(r.sessions, 4);
        assert_eq!(r.commands, 4 * DEADLOCK_SCRIPT.len() as u64);
        assert_eq!(r.errors, 0, "scripted diagnosis should not error");
        assert!(r.isolated, "remote transcripts diverged from in-process");
        assert!(r.p50 <= r.p99);
    }
}
