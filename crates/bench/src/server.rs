//! Experiments E7 and E8: remote debug-server load.
//!
//! **E7** drives N concurrent TCP sessions, each replaying the scripted
//! §III deadlock diagnosis end to end (attach, static analysis, run to
//! the deadlock, inspect filters/links, inject the missing token, run to
//! completion, checkpoint). The harness reports throughput
//! (sessions/sec), session-setup (`attach`) and steady-state command
//! latencies *separately* — conflating them hid the attach-latency
//! scaling bug this module's E8 half now pins — and the property the
//! server exists to guarantee: *isolation*, every remote transcript
//! byte-identical to the in-process run.
//!
//! **E8** is the attach-density experiment: N clients connect, then
//! attach the same variant simultaneously, with the compile-once cache
//! either enabled (one build, N copy-on-write forks) or disabled (the
//! old per-session-recompile behaviour, kept as the measured baseline).

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use h264_pipeline::Bug;

// The bench crate's own module is also called `server`, so the debug
// server crate must be named from the crate root.
use ::server::{local_transcript, Client, Server, ServerConfig, DEADLOCK_SCRIPT};

/// Aggregate result of one load run.
#[derive(Debug, Clone)]
pub struct ServerLoadResult {
    pub sessions: usize,
    /// Wall time from releasing all clients to the last disconnect.
    pub wall: Duration,
    pub sessions_per_sec: f64,
    /// Total debug commands executed across all sessions (excludes
    /// `attach`, which is timed separately).
    pub commands: u64,
    /// Commands the server answered with `ok: false`.
    pub errors: u64,
    /// Session-setup (`attach`) latency, reported separately from the
    /// steady-state command quantiles below so setup cannot be conflated
    /// with steady-state (the E6 discipline).
    pub attach_mean: Duration,
    pub attach_p50: Duration,
    pub attach_p99: Duration,
    /// Per-command latency quantiles across every session's commands.
    pub p50: Duration,
    pub p99: Duration,
    /// True iff every remote transcript was byte-identical to the
    /// in-process reference run (zero cross-session interference).
    pub isolated: bool,
}

struct WorkerResult {
    attach: Duration,
    latencies: Vec<Duration>,
    transcript: String,
    errors: u64,
}

fn drive_session(addr: std::net::SocketAddr, n_mbs: u64) -> Result<WorkerResult, String> {
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let t = Instant::now();
    let reply = client.request(&format!("attach deadlock {n_mbs}"))?;
    let attach = t.elapsed();
    if !reply.ok {
        return Err(format!("attach failed: {}", reply.output));
    }
    let mut latencies = Vec::with_capacity(DEADLOCK_SCRIPT.len());
    let mut transcript = String::new();
    let mut errors = 0;
    for cmd in DEADLOCK_SCRIPT {
        let t = Instant::now();
        let reply = client.request(cmd)?;
        latencies.push(t.elapsed());
        if !reply.ok {
            errors += 1;
        }
        transcript.push_str(&reply.output);
        transcript.push('\n');
    }
    let _ = client.request("quit");
    Ok(WorkerResult {
        attach,
        latencies,
        transcript,
        errors,
    })
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run `n_sessions` concurrent scripted diagnoses against one server
/// instance and aggregate throughput, latency and isolation.
pub fn server_load(n_sessions: usize, n_mbs: u64) -> ServerLoadResult {
    let reference = local_transcript(Bug::Deadlock, n_mbs, DEADLOCK_SCRIPT)
        .expect("in-process reference transcript");

    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let shared = server.shared();
    let server_thread = std::thread::spawn(move || server.run());

    // All clients connect behind a barrier so the measured window starts
    // with every session in flight, not with a connect ramp.
    let start_line = Arc::new(Barrier::new(n_sessions + 1));
    let workers: Vec<_> = (0..n_sessions)
        .map(|_| {
            let start_line = Arc::clone(&start_line);
            std::thread::spawn(move || {
                start_line.wait();
                drive_session(addr, n_mbs)
            })
        })
        .collect();
    start_line.wait();
    let t0 = Instant::now();
    let results: Vec<WorkerResult> = workers
        .into_iter()
        .map(|w| w.join().expect("worker panicked").expect("session failed"))
        .collect();
    let wall = t0.elapsed();

    shared.request_shutdown();
    let _ = server_thread.join();

    let mut latencies: Vec<Duration> = results.iter().flat_map(|r| r.latencies.clone()).collect();
    latencies.sort();
    let mut attaches: Vec<Duration> = results.iter().map(|r| r.attach).collect();
    attaches.sort();
    let attach_total: Duration = attaches.iter().sum();
    ServerLoadResult {
        sessions: n_sessions,
        wall,
        sessions_per_sec: n_sessions as f64 / wall.as_secs_f64(),
        commands: latencies.len() as u64,
        errors: results.iter().map(|r| r.errors).sum(),
        attach_mean: attach_total / n_sessions.max(1) as u32,
        attach_p50: quantile(&attaches, 0.50),
        attach_p99: quantile(&attaches, 0.99),
        p50: quantile(&latencies, 0.50),
        p99: quantile(&latencies, 0.99),
        isolated: results.iter().all(|r| r.transcript == reference),
    }
}

/// Aggregate result of one E8 attach-density run.
#[derive(Debug, Clone)]
pub struct AttachLoadResult {
    pub sessions: usize,
    /// Whether the compile-once cache served the attaches (false = the
    /// per-session-recompile baseline).
    pub cached: bool,
    /// One-time session setup: the cache-warming compile + boot. Zero in
    /// baseline mode, where every attach pays it instead.
    pub setup: Duration,
    /// Wall time for all `sessions` simultaneous attaches to complete
    /// (first attach sent → last attach reply), computed from the
    /// workers' own timestamps — the orchestrating thread can be
    /// descheduled for the whole storm on a loaded box, so its clock
    /// cannot be trusted for this.
    pub storm: Duration,
    /// Attach latency measured by a dedicated probe client performing
    /// [`PROBE_ATTACHES`] attach/detach cycles while all `sessions` stay
    /// resident. A single in-flight probe isolates the per-attach cost
    /// from the thundering-herd queueing the storm necessarily has.
    pub attach_mean: Duration,
    pub attach_p50: Duration,
    pub attach_p99: Duration,
    /// Number of probe attach/detach cycles behind the quantiles.
    pub probes: u64,
    /// Per-session attach latency observed inside the storm itself
    /// (client-measured; includes the herd's queueing).
    pub storm_attach_p50: Duration,
    pub storm_attach_p99: Duration,
    /// Steady-state command quantiles, measured while all sessions are
    /// attached (density held by a barrier).
    pub steady_p50: Duration,
    pub steady_p99: Duration,
    /// Compile-cache traffic (misses == compiles in cached mode; the
    /// baseline bypasses the cache so both stay 0 there).
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub errors: u64,
    /// Every session's two-command transcript byte-identical to a fresh
    /// uncached in-process build — the no-state-leak gate.
    pub isolated: bool,
}

/// Steady-state probe commands: read-only inspection, deterministic
/// output for the isolation byte-compare.
const STEADY_SCRIPT: &[&str] = &["info filters", "info links"];

/// Attach/detach cycles the probe client performs at full density; p99
/// is then the second-worst sample rather than the single worst.
const PROBE_ATTACHES: usize = 100;

struct AttachWorker {
    /// When this worker left the start barrier and sent its attach.
    started: Instant,
    /// When its attach reply arrived.
    attached_at: Instant,
    attach: Duration,
    steady: Vec<Duration>,
    transcript: String,
    errors: u64,
}

fn drive_attach(
    addr: std::net::SocketAddr,
    n_mbs: u64,
    start_line: &Barrier,
    hold: &Barrier,
    release: &Barrier,
) -> Result<AttachWorker, String> {
    // Connect with retry: thousands of simultaneous connects can
    // transiently overflow the accept backlog.
    let mut client = None;
    for _ in 0..100 {
        match Client::connect(addr) {
            Ok(c) => {
                client = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let run = |client: &mut Client| -> Result<AttachWorker, String> {
        let started = Instant::now();
        let reply = client.request(&format!("attach deadlock {n_mbs}"))?;
        let attached_at = Instant::now();
        let attach = attached_at - started;
        if !reply.ok {
            return Err(format!("attach failed: {}", reply.output));
        }
        let mut steady = Vec::with_capacity(STEADY_SCRIPT.len());
        let mut transcript = String::new();
        let mut errors = 0;
        for cmd in STEADY_SCRIPT {
            let t = Instant::now();
            let reply = client.request(cmd)?;
            steady.push(t.elapsed());
            if !reply.ok {
                errors += 1;
            }
            transcript.push_str(&reply.output);
            transcript.push('\n');
        }
        Ok(AttachWorker {
            started,
            attached_at,
            attach,
            steady,
            transcript,
            errors,
        })
    };
    start_line.wait();
    let result = match client.as_mut() {
        Some(c) => run(c),
        None => Err("could not connect".into()),
    };
    // Both barriers are reached on success and failure alike — a missing
    // waiter would deadlock the rest. `hold` marks this session resident;
    // `release` keeps it resident until the probe has finished measuring,
    // so the probe's quantiles reflect N *concurrent* sessions.
    hold.wait();
    release.wait();
    if let Some(mut c) = client {
        let _ = c.request("quit");
    }
    result
}

/// Run the E8 attach-density experiment: `n_sessions` clients attach the
/// same variant simultaneously and stay resident, cache on (`cached`) or
/// off (recompile baseline); a probe client then measures attach latency
/// at that density with repeated attach/detach cycles.
pub fn attach_load(n_sessions: usize, n_mbs: u64, cached: bool) -> AttachLoadResult {
    let reference = local_transcript(Bug::Deadlock, n_mbs, STEADY_SCRIPT)
        .expect("in-process reference transcript");
    let cfg = ServerConfig {
        attach_cache: cached,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();
    let shared = server.shared();
    let server_thread = std::thread::spawn(move || server.run());

    // Warm the cache: this one compile+boot is *session setup*, reported
    // separately (E6 discipline). In baseline mode there is nothing to
    // warm — every attach pays the compile, which is the point.
    let t0 = Instant::now();
    let setup = if cached {
        let mut warm = Client::connect(addr).expect("warm-up connect");
        let reply = warm
            .request(&format!("attach deadlock {n_mbs}"))
            .expect("warm-up attach");
        assert!(reply.ok, "warm-up attach failed: {}", reply.output);
        let _ = warm.request("quit");
        t0.elapsed()
    } else {
        Duration::ZERO
    };

    let start_line = Arc::new(Barrier::new(n_sessions + 1));
    let hold = Arc::new(Barrier::new(n_sessions + 1));
    let release = Arc::new(Barrier::new(n_sessions + 1));
    let workers: Vec<_> = (0..n_sessions)
        .map(|_| {
            let start_line = Arc::clone(&start_line);
            let hold = Arc::clone(&hold);
            let release = Arc::clone(&release);
            std::thread::spawn(move || drive_attach(addr, n_mbs, &start_line, &hold, &release))
        })
        .collect();
    start_line.wait();
    hold.wait(); // every session attached and measured

    // The probe: one client, one request in flight, at full density.
    let mut attaches: Vec<Duration> = Vec::with_capacity(PROBE_ATTACHES);
    let mut probe_errors = 0;
    match Client::connect(addr) {
        Ok(mut probe) => {
            for _ in 0..PROBE_ATTACHES {
                let t = Instant::now();
                match probe.request(&format!("attach deadlock {n_mbs}")) {
                    Ok(r) if r.ok => attaches.push(t.elapsed()),
                    _ => probe_errors += 1,
                }
                if probe.request("detach").is_err() {
                    probe_errors += 1;
                    break;
                }
            }
            let _ = probe.request("quit");
        }
        Err(_) => probe_errors += 1,
    }
    release.wait();
    let results: Vec<AttachWorker> = workers
        .into_iter()
        .map(|w| w.join().expect("worker panicked").expect("session failed"))
        .collect();

    let storm = match (
        results.iter().map(|r| r.started).min(),
        results.iter().map(|r| r.attached_at).max(),
    ) {
        (Some(first), Some(last)) => last.saturating_duration_since(first),
        _ => Duration::ZERO,
    };

    // Raw cache counters: in cached mode misses == total compiles (the
    // warm-up's one); in baseline mode the cache is bypassed entirely
    // and every attach compiled (misses stays 0, compiles ==
    // sessions + probes).
    let cache_hits = shared.cache.hits();
    let cache_misses = shared.cache.misses();
    shared.request_shutdown();
    let _ = server_thread.join();

    attaches.sort();
    let mut storm_attaches: Vec<Duration> = results.iter().map(|r| r.attach).collect();
    storm_attaches.sort();
    let mut steady: Vec<Duration> = results.iter().flat_map(|r| r.steady.clone()).collect();
    steady.sort();
    let attach_total: Duration = attaches.iter().sum();
    AttachLoadResult {
        sessions: n_sessions,
        cached,
        setup,
        storm,
        attach_mean: attach_total / attaches.len().max(1) as u32,
        attach_p50: quantile(&attaches, 0.50),
        attach_p99: quantile(&attaches, 0.99),
        probes: attaches.len() as u64,
        storm_attach_p50: quantile(&storm_attaches, 0.50),
        storm_attach_p99: quantile(&storm_attaches, 0.99),
        steady_p50: quantile(&steady, 0.50),
        steady_p99: quantile(&steady, 0.99),
        cache_hits,
        cache_misses,
        errors: results.iter().map(|r| r.errors).sum::<u64>() + probe_errors,
        isolated: results.iter().all(|r| r.transcript == reference),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_sessions_stay_isolated() {
        let r = server_load(4, 4);
        assert_eq!(r.sessions, 4);
        assert_eq!(r.commands, 4 * DEADLOCK_SCRIPT.len() as u64);
        assert_eq!(r.errors, 0, "scripted diagnosis should not error");
        assert!(r.isolated, "remote transcripts diverged from in-process");
        assert!(r.p50 <= r.p99);
        assert!(r.attach_p50 <= r.attach_p99);
    }

    #[test]
    fn attach_storm_compiles_once_and_stays_isolated() {
        let r = attach_load(8, 4, true);
        assert_eq!(r.sessions, 8);
        assert_eq!(
            r.cache_misses, 1,
            "8 attaches of one variant must compile exactly once"
        );
        assert!(r.cache_hits >= 8, "storm attaches should all hit the cache");
        assert_eq!(r.errors, 0);
        assert!(r.isolated, "forked sessions diverged from a fresh build");
        assert!(r.attach_p50 <= r.attach_p99);
    }

    #[test]
    fn uncached_baseline_recompiles_per_session() {
        let r = attach_load(2, 2, false);
        assert_eq!(r.cache_misses, 0, "baseline must bypass the cache");
        assert_eq!(r.cache_hits, 0);
        assert!(r.isolated);
    }
}
