//! Benchmark harnesses for the paper's performance discussion (§V) and
//! the qualitative analysis it proposes (§VI-F).
//!
//! * [`overhead`] — experiment E1: the slowdown introduced by the
//!   debugger's function breakpoints, and the two mitigations §V
//!   describes (disable-until-critical; framework cooperation /
//!   actor-specific breakpoints);
//! * [`localization`] — experiment E2: the study §VI-F calls for,
//!   "measure the time required to locate different kinds of bugs ...
//!   compared against more common methods like source-level debuggers".
//!   Both strategies are *scripted* debugger sessions; interaction counts
//!   fall out of execution, they are not hard-coded.

//! * [`scaling`] — experiment E3: event-capture hot-path scaling
//!   (per-event cost vs. installed catchpoints; bounded token storms).

//! * [`analysis`] — experiments E4/E5: static analyzer and bytecode
//!   verifier cost and coverage over the decoder variants (the static
//!   half of static-vs-dynamic).

//! * [`replay`] — experiment E6: time-travel recording cost per
//!   checkpoint interval, and reverse-execution latency.

//! * [`server`] — experiments E7/E8: remote debug-server load — N
//!   concurrent TCP sessions each replaying the scripted deadlock
//!   diagnosis (E7), and the attach-latency scaling study with the
//!   compile-once cache on and off (E8) — throughput, latency quantiles
//!   and transcript-isolation checks.

//! * [`fuzz_farm`] — experiment E10: differential-fuzzing divergence
//!   rates (static verdicts vs. simulated ground truth over generated
//!   apps) and the DFA004 mutation self-check.

//! * [`multiverse`] — experiment E11: the exploration engine's search
//!   throughput (universes/sec), time-to-witness for the seeded deadlock
//!   and race, and the pruning ratio with sleep sets on vs. off.

pub mod analysis;
pub mod fuzz_farm;
pub mod localization;
pub mod multiverse;
pub mod overhead;
pub mod replay;
pub mod scaling;
pub mod sched_bound;
pub mod server;

pub use self::multiverse::{explore_study, pruning_ratio, ExploreRow, E11_N_MBS};
pub use analysis::{analyze_decoder, verify_decoder, AnalysisResult, VerifyResult};
pub use fuzz_farm::{fuzz_study, mutation_study, FarmSummary, MutationOutcome};
pub use localization::{localize, LocalizationResult, Strategy};
pub use overhead::{run_overhead, DebugConfig, OverheadResult};
pub use replay::{checkpoint_overhead, reverse_continue_latency, ReplayPoint, ReverseLatency};
pub use scaling::{bounded_storm, catchpoint_scaling, ScalingPoint, StormResult};
pub use sched_bound::{row_label, throughput_bound, throughput_study, BoundRow};
pub use server::{attach_load, server_load, AttachLoadResult, ServerLoadResult};
