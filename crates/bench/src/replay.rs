//! Experiment E6: time-travel recording cost and reverse-execution
//! latency.
//!
//! The checkpoint engine must be cheap enough to leave on for a whole
//! interactive session: at the default 10k-cycle interval the wall-clock
//! overhead over an identical un-recorded debug run should stay within a
//! few percent (EXPERIMENTS.md sets the gate at 10%). The second half
//! measures what the user actually waits for: the latency of a
//! `reverse-continue` from the end of the run, which is one restore plus
//! at most two interval-long replays.

use std::time::{Duration, Instant};

use dfdbg::{Session, Stop};
use h264_pipeline::{build_decoder, Bug};
use p2012::PlatformConfig;
use pedf::{EnvSink, EnvSource, ValueGen};

const SEED: u32 = 0xbeef;

/// One point on the cost/interval curve. `interval == 0` is the control:
/// the same debug session with time travel disabled.
#[derive(Debug, Clone)]
pub struct ReplayPoint {
    pub interval: u64,
    /// One-time `enable_time_travel` cost: full memory image + baseline
    /// hash. Paid once per session, independent of run length, so it is
    /// reported separately from the recording overhead.
    pub setup: Duration,
    /// Wall time of the recorded run itself (after setup).
    pub wall: Duration,
    pub cycles: u64,
    pub checkpoints: usize,
    /// Total dirty pages stored across all delta checkpoints.
    pub pages_stored: usize,
    /// Wall-clock ratio of the recorded run against the `interval == 0`
    /// control — the steady-state recording overhead.
    pub overhead: f64,
}

/// A timed `reverse-continue` from the end of a recorded run.
#[derive(Debug, Clone)]
pub struct ReverseLatency {
    pub interval: u64,
    pub wall: Duration,
    /// How far back the landing hit was (cycles rewound).
    pub rewound_cycles: u64,
}

fn debug_session(n_mbs: u64) -> Session {
    let (sys, mut app) = build_decoder(Bug::None, n_mbs, PlatformConfig::default()).expect("build");
    let boot = app.boot_entry;
    let info = std::mem::take(&mut app.info);
    let mut s = Session::attach(sys, info);
    s.boot(boot).expect("boot");
    s.sys
        .runtime
        .add_source(
            EnvSource::new(app.boundary_in["bits_in"], 2, ValueGen::Lcg { state: SEED })
                .with_limit(n_mbs),
        )
        .unwrap();
    s.sys
        .runtime
        .add_source(
            EnvSource::new(
                app.boundary_in["cfg_in"],
                2,
                ValueGen::Counter { next: 0, step: 1 },
            )
            .with_limit(n_mbs),
        )
        .unwrap();
    s.sys
        .runtime
        .add_sink(EnvSink::new(app.boundary_out["frame_out"], 1))
        .unwrap();
    s
}

fn run_to_end(s: &mut Session) {
    loop {
        match s.run(50_000_000) {
            Stop::Quiescent => break,
            Stop::CycleLimit => panic!("decode did not finish"),
            Stop::Deadlock => panic!("unexpected deadlock"),
            _ => {}
        }
    }
}

/// Decode `n_mbs` macroblocks once per interval (plus the un-recorded
/// control) and report the cost/interval curve. Interval 0 runs first and
/// anchors the overhead ratios. Each point is the best of five measured
/// runs — the runs are only a few milliseconds, so a single sample is
/// dominated by scheduler noise.
pub fn checkpoint_overhead(n_mbs: u64, intervals: &[u64]) -> Vec<ReplayPoint> {
    const REPS: usize = 5;
    let mut out = Vec::new();
    let mut base_wall = None;
    for &interval in std::iter::once(&0u64).chain(intervals) {
        // Warm-up to stabilise allocator and page-cache state.
        {
            let mut w = debug_session(n_mbs.min(8));
            if interval > 0 {
                w.enable_time_travel(interval);
            }
            run_to_end(&mut w);
        }
        let mut best: Option<ReplayPoint> = None;
        for _ in 0..REPS {
            let mut s = debug_session(n_mbs);
            let setup_start = Instant::now();
            if interval > 0 {
                s.enable_time_travel(interval);
            }
            let setup = setup_start.elapsed();
            let start = Instant::now();
            run_to_end(&mut s);
            let wall = start.elapsed();
            let (checkpoints, pages_stored) = s.checkpoint_footprint();
            assert!(
                s.replay_findings().is_empty(),
                "recording flagged divergence on a clean run"
            );
            let p = ReplayPoint {
                interval,
                setup,
                wall,
                cycles: s.clock(),
                checkpoints,
                pages_stored,
                overhead: 1.0, // anchored below once the best rep is known
            };
            if best.as_ref().is_none_or(|b| p.wall < b.wall) {
                best = Some(p);
            }
        }
        let mut p = best.expect("REPS >= 1");
        let base = *base_wall.get_or_insert(p.wall.as_secs_f64());
        p.overhead = p.wall.as_secs_f64() / base;
        out.push(p);
    }
    out
}

/// Record a full decode at `interval`, install a send catchpoint on
/// `bh::red_out` *after* the fact, and time the `reverse-continue` that
/// rewinds to its last firing.
pub fn reverse_continue_latency(n_mbs: u64, interval: u64) -> ReverseLatency {
    let mut s = debug_session(n_mbs);
    s.enable_time_travel(interval);
    run_to_end(&mut s);
    let end = s.clock();
    s.catch_iface_send("bh::red_out").expect("catchpoint");
    let start = Instant::now();
    let stop = s.reverse_continue().expect("recorded hit");
    let wall = start.elapsed();
    assert!(
        matches!(stop, Stop::Dataflow(_)),
        "expected a catchpoint landing, got {stop:?}"
    );
    ReverseLatency {
        interval,
        wall,
        rewound_cycles: end - s.clock(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_shape_and_clean_recording() {
        let pts = checkpoint_overhead(6, &[500, 2_000]);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].interval, 0);
        assert_eq!(pts[0].checkpoints, 0);
        // Recording points actually recorded, and denser intervals record
        // more checkpoints.
        assert!(pts[1].checkpoints > pts[2].checkpoints);
        assert!(pts[2].checkpoints >= 1);
        // Identical simulated execution in all configurations.
        assert!(pts.iter().all(|p| p.cycles == pts[0].cycles));
    }

    #[test]
    fn reverse_continue_lands_in_the_past() {
        let r = reverse_continue_latency(6, 1_000);
        assert!(r.rewound_cycles > 0);
    }
}
