//! E3: event-capture hot-path scaling.
//!
//! Two measurements backing the hot-path rework:
//!
//! * [`catchpoint_scaling`] — per-event model cost as the number of
//!   installed-but-idle catchpoints grows. With the indexed dispatch the
//!   cost must stay roughly flat (idle catchpoints are never consulted);
//!   the old linear scan made it grow with the catchpoint count.
//! * [`bounded_storm`] — a long token storm against a small record
//!   limit, reporting the store's live/allocated/evicted counters. Live
//!   count must respect the limit no matter how long the storm runs.

use std::time::Instant;

use debuginfo::TypeTable;
use dfdbg::{CatchCond, DfEvent, DfModel, FlowBehavior};
use p2012::PeId;
use pedf::{ActorId, ActorKind, ConnId, Dir, LinkClass};

/// a -> b over one link, the same shape as the B3 bench.
fn two_filter_model() -> DfModel {
    let mut m = DfModel::new(TypeTable::new());
    let mut stops = Vec::new();
    for (i, (name, kind, parent)) in [
        ("m", ActorKind::Module, None),
        ("a", ActorKind::Filter, Some(0u32)),
        ("b", ActorKind::Filter, Some(0)),
    ]
    .into_iter()
    .enumerate()
    {
        m.apply(
            DfEvent::ActorRegistered {
                id: i as u32,
                name: name.into(),
                kind,
                parent,
                pe: Some(PeId(i as u16)),
                work: Some(10),
            },
            0,
            &mut stops,
        );
    }
    for (id, actor, name, dir) in [(0u32, 1u32, "out", Dir::Out), (1, 2, "in", Dir::In)] {
        m.apply(
            DfEvent::ConnRegistered {
                id,
                actor,
                name: name.into(),
                dir,
                ty: TypeTable::U32,
            },
            0,
            &mut stops,
        );
    }
    m.apply(
        DfEvent::LinkRegistered {
            id: 0,
            from: 0,
            to: 1,
            capacity: 4096,
            class: LinkClass::Data,
            fifo_base: 0,
        },
        0,
        &mut stops,
    );
    m.apply(DfEvent::BootComplete, 0, &mut stops);
    m
}

/// Drive `rounds` push/pop/work-begin rounds; none of the installed
/// catchpoints may fire.
fn drive(m: &mut DfModel, rounds: u32) {
    let mut stops = Vec::new();
    for i in 0..rounds {
        m.apply(
            DfEvent::TokenPushed {
                conn: ConnId(0),
                words: vec![i],
            },
            u64::from(i),
            &mut stops,
        );
        m.apply(
            DfEvent::TokenPopped {
                conn: ConnId(1),
                index: 0,
                words: vec![i],
            },
            u64::from(i),
            &mut stops,
        );
        m.apply(
            DfEvent::WorkBegun { actor: ActorId(2) },
            u64::from(i),
            &mut stops,
        );
        assert!(stops.is_empty(), "idle catchpoints must not fire");
    }
}

#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Installed idle catchpoints.
    pub catchpoints: usize,
    /// Cost per model event (push + pop + work = 3 events per round).
    pub ns_per_event: f64,
}

/// Measure per-event cost with `k` idle value catchpoints on the hot
/// connection, for each `k` in `ks`. Takes the best of three runs to
/// suppress allocator and scheduler noise.
pub fn catchpoint_scaling(ks: &[usize], rounds: u32) -> Vec<ScalingPoint> {
    ks.iter()
        .map(|&k| {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let mut m = two_filter_model();
                for _ in 0..k {
                    m.add_catch(
                        CatchCond::TokenValueEq {
                            conn: ConnId(1),
                            value: u32::MAX,
                        },
                        false,
                    );
                }
                let start = Instant::now();
                drive(&mut m, rounds);
                let ns = start.elapsed().as_nanos() as f64 / (f64::from(rounds) * 3.0);
                best = best.min(ns);
            }
            ScalingPoint {
                catchpoints: k,
                ns_per_event: best,
            }
        })
        .collect()
}

#[derive(Debug, Clone, Copy)]
pub struct StormResult {
    pub allocated: u64,
    pub live: usize,
    pub evicted: u64,
    pub limit: usize,
    /// `info last_token` still resolves after eviction pressure.
    pub provenance_intact: bool,
}

/// Run a `2 * n`-token storm (push + pop per round) against `limit`.
pub fn bounded_storm(n: u64, limit: usize) -> StormResult {
    let mut m = two_filter_model();
    m.set_record_limit(limit);
    m.actors[2].behavior = FlowBehavior::Pipeline;
    let mut stops = Vec::new();
    for i in 0..n {
        m.apply(
            DfEvent::TokenPushed {
                conn: ConnId(0),
                words: vec![i as u32],
            },
            i,
            &mut stops,
        );
        m.apply(
            DfEvent::TokenPopped {
                conn: ConnId(1),
                index: 0,
                words: vec![i as u32],
            },
            i,
            &mut stops,
        );
        m.apply(DfEvent::WorkBegun { actor: ActorId(2) }, i, &mut stops);
        stops.clear();
    }
    let provenance_intact = m
        .last_token_path(ActorId(2))
        .first()
        .is_some_and(|t| t.value.head_word() == (n - 1) as u32);
    StormResult {
        allocated: m.tokens.allocated(),
        live: m.tokens.len(),
        evicted: m.tokens.evicted(),
        limit,
        provenance_intact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_respects_record_limit() {
        let r = bounded_storm(10_000, 256);
        assert_eq!(r.allocated, 10_000);
        assert!(r.live <= 256, "live {} > limit", r.live);
        assert!(r.evicted >= 9_744 - 256);
        assert!(r.provenance_intact);
    }

    #[test]
    fn idle_catchpoints_cost_roughly_nothing() {
        // Coarse guard against reintroducing the linear scan: with the
        // index, 64 idle catchpoints cost about the same as none; the
        // scan made them ~10x. The 5x bound leaves headroom for noisy
        // CI machines while still catching a regression to O(K).
        let pts = catchpoint_scaling(&[0, 64], 20_000);
        let flat = pts[1].ns_per_event <= pts[0].ns_per_event * 5.0;
        assert!(
            flat,
            "64 idle catchpoints cost {:.1} ns/event vs {:.1} with none",
            pts[1].ns_per_event, pts[0].ns_per_event
        );
    }
}
