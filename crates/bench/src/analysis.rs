//! Experiment E4: static analyzer cost and coverage.
//!
//! The point of running the analyzer *inside* the debugger is that it is
//! cheap enough to run on every attach — this harness measures the full
//! `dfa::analyze` pass (kernel abstract interpretation + graph checks +
//! span resolution) over the H.264 decoder variants and reports what each
//! variant yields, so EXPERIMENTS.md can quote static-vs-dynamic numbers.

use std::time::{Duration, Instant};

use dfa::AnalysisInput;
use h264_pipeline::{build_decoder, decoder_sources, Bug};
use p2012::PlatformConfig;

#[derive(Debug)]
pub struct AnalysisResult {
    pub bug: Bug,
    /// Wall time of `dfa::analyze` + span resolution (build excluded).
    pub wall: Duration,
    pub actors: usize,
    pub links: usize,
    pub kernels: usize,
    pub findings: usize,
    pub errors: usize,
    /// Rule ids hit, deduplicated, in id order.
    pub rules_hit: Vec<&'static str>,
}

/// Build the `bug` decoder variant and return its analysis input plus the
/// line table needed for span resolution.
pub fn decoder_input(bug: Bug) -> (AnalysisInput, debuginfo::LineTable) {
    let (_sys, app) = build_decoder(bug, 4, PlatformConfig::default()).expect("build");
    let input = AnalysisInput::from_app(&app, &decoder_sources(bug));
    (input, app.info.lines)
}

/// Build the `bug` decoder variant and return the bytecode-verifier input
/// (linked image + elaborated platform).
pub fn bcv_decoder_input(bug: Bug) -> bcv::AnalysisInput {
    let (_sys, app) = build_decoder(bug, 4, PlatformConfig::default()).expect("build");
    bcv::AnalysisInput::from_app(&app)
}

#[derive(Debug)]
pub struct VerifyResult {
    pub bug: Bug,
    /// Wall time of one full `bcv::verify` pass (build excluded).
    pub wall: Duration,
    pub functions: usize,
    pub findings: usize,
    pub errors: usize,
    pub race_pairs: usize,
    /// Rule ids hit, deduplicated, in id order.
    pub rules_hit: Vec<&'static str>,
}

/// Time one full bytecode-verification pass (CFG + stack depths + interval
/// abstract interpretation + happens-before race analysis) of the `bug`
/// decoder variant, keeping the best of `reps` runs.
pub fn verify_decoder(bug: Bug, reps: u32) -> VerifyResult {
    let input = bcv_decoder_input(bug);
    let mut best = Duration::MAX;
    let mut report = bcv::Report::default();
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let r = bcv::verify(&input);
        best = best.min(t0.elapsed());
        report = r;
    }
    let mut rules_hit: Vec<&'static str> = report.findings.iter().map(|f| f.rule).collect();
    rules_hit.sort_unstable();
    rules_hit.dedup();
    VerifyResult {
        bug,
        wall: best,
        functions: input.program.funcs.len(),
        findings: report.findings.len(),
        errors: report
            .findings
            .iter()
            .filter(|f| f.severity == dfa::Severity::Error)
            .count(),
        race_pairs: report.race_pairs.len(),
        rules_hit,
    }
}

/// Time one full analysis of the `bug` decoder variant. The run is
/// repeated `reps` times and the best wall time kept (the analyzer is
/// sub-millisecond, so a single sample is mostly allocator noise).
pub fn analyze_decoder(bug: Bug, reps: u32) -> AnalysisResult {
    let (input, lines) = decoder_input(bug);
    let mut best = Duration::MAX;
    let mut report = dfa::Report::default();
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let mut r = dfa::analyze(&input);
        r.resolve_spans(&lines);
        best = best.min(t0.elapsed());
        report = r;
    }
    let mut rules_hit: Vec<&'static str> = report.findings.iter().map(|f| f.rule).collect();
    rules_hit.sort_unstable();
    rules_hit.dedup();
    AnalysisResult {
        bug,
        wall: best,
        actors: input.graph.actors.len(),
        links: input.graph.links.len(),
        kernels: input.kernels.len(),
        findings: report.findings.len(),
        errors: report
            .findings
            .iter()
            .filter(|f| f.severity == dfa::Severity::Error)
            .count(),
        rules_hit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_variant_is_clean_and_fast() {
        let r = analyze_decoder(Bug::None, 2);
        assert_eq!(r.findings, 0);
        assert_eq!(r.errors, 0);
        assert!(r.kernels > 0 && r.links > 0);
        // "Cheap enough to run on every attach": well under a second.
        assert!(r.wall < Duration::from_secs(1), "{:?}", r.wall);
    }

    #[test]
    fn seeded_bugs_are_found() {
        let dl = analyze_decoder(Bug::Deadlock, 1);
        assert!(dl.errors > 0);
        assert!(dl.rules_hit.contains(&dfa::rules::RATE_INCONSISTENT));
        let rm = analyze_decoder(Bug::RateMismatch, 1);
        assert!(rm.errors > 0);
    }
}
