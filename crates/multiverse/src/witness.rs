//! Witness strings: the portable, replayable identity of a found universe.
//!
//! A witness pins down (a) *which* machine it applies to — the anchor, a
//! state hash of the booted system exploration started from — and (b)
//! *how to get to the failure*: the sparse choice-trace overrides plus the
//! cycle at which the failure manifests. `explore replay` parses one,
//! refuses to run against a different anchor, installs the overrides and
//! lands a time-travel session at the failure cycle.
//!
//! Grammar (one line, no spaces):
//!
//! ```text
//! mv1:<anchor hex16>:<rule>:<failure_cycle>:<overrides>
//! overrides := '-' | choice ('+' choice)*
//! choice    := <kind tag>.<decision index>.<code>      e.g. a.11.4
//! ```

use pedf::ChoiceRec;

/// A minimal, replayable witness for a schedule-dependent failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// State hash of the system the exploration forked from; replay must
    /// match it or the choice indices mean something else entirely.
    pub anchor: u64,
    /// Rule witnessed: `MV701` (deadlock/wedge) or `MV702` (race).
    pub rule: String,
    /// Cycle (absolute clock) at which the failure manifests under the
    /// overridden schedule.
    pub failure_cycle: u64,
    /// The choice-trace overrides identifying the universe. Empty means
    /// the default schedule itself fails.
    pub overrides: Vec<ChoiceRec>,
    /// Human-readable blame (actors / edge / address). Carried alongside,
    /// not encoded in the string form.
    pub blame: String,
}

impl std::fmt::Display for Witness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mv1:{:016x}:{}:{}:",
            self.anchor, self.rule, self.failure_cycle
        )?;
        if self.overrides.is_empty() {
            return f.write_str("-");
        }
        for (i, ov) in self.overrides.iter().enumerate() {
            if i > 0 {
                f.write_str("+")?;
            }
            write!(f, "{ov}")?;
        }
        Ok(())
    }
}

impl Witness {
    /// Parse the `Display` form. The blame field is not part of the
    /// encoding and comes back empty.
    pub fn parse(s: &str) -> Result<Witness, String> {
        let parts: Vec<&str> = s.trim().split(':').collect();
        let [magic, anchor, rule, cycle, ovs] = parts.as_slice() else {
            return Err(format!(
                "malformed witness: expected 5 ':'-separated fields, got {}",
                parts.len()
            ));
        };
        if *magic != "mv1" {
            return Err(format!("unknown witness version `{magic}` (want mv1)"));
        }
        let anchor =
            u64::from_str_radix(anchor, 16).map_err(|e| format!("bad witness anchor: {e}"))?;
        if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric()) {
            return Err(format!("bad witness rule `{rule}`"));
        }
        let failure_cycle = cycle
            .parse()
            .map_err(|e| format!("bad witness failure cycle: {e}"))?;
        let overrides = if *ovs == "-" {
            Vec::new()
        } else {
            ovs.split('+')
                .map(|c| ChoiceRec::parse(c).ok_or_else(|| format!("bad witness choice `{c}`")))
                .collect::<Result<Vec<_>, _>>()?
        };
        Ok(Witness {
            anchor,
            rule: rule.to_string(),
            failure_cycle,
            overrides,
            blame: String::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pedf::ChoiceKind;

    fn rec(index: u64, code: u8) -> ChoiceRec {
        ChoiceRec {
            kind: ChoiceKind::ActorStart,
            index,
            code,
        }
    }

    #[test]
    fn round_trips_with_overrides() {
        let w = Witness {
            anchor: 0xdead_beef_0123_4567,
            rule: "MV702".into(),
            failure_cycle: 1519,
            overrides: vec![rec(11, 4), rec(12, 2)],
            blame: "hwcfg <-> bh".into(),
        };
        let s = w.to_string();
        assert_eq!(s, "mv1:deadbeef01234567:MV702:1519:a.11.4+a.12.2");
        let back = Witness::parse(&s).unwrap();
        assert_eq!(back.anchor, w.anchor);
        assert_eq!(back.rule, w.rule);
        assert_eq!(back.failure_cycle, w.failure_cycle);
        assert_eq!(back.overrides, w.overrides);
        assert_eq!(back.blame, ""); // not encoded
    }

    #[test]
    fn round_trips_empty_overrides() {
        let w = Witness {
            anchor: 1,
            rule: "MV701".into(),
            failure_cycle: 5000,
            overrides: vec![],
            blame: String::new(),
        };
        let s = w.to_string();
        assert_eq!(s, "mv1:0000000000000001:MV701:5000:-");
        assert_eq!(Witness::parse(&s).unwrap(), w);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Witness::parse("mv2:0:MV701:1:-").is_err());
        assert!(Witness::parse("mv1:zz:MV701:1:-").is_err());
        assert!(Witness::parse("mv1:0:MV701:x:-").is_err());
        assert!(Witness::parse("mv1:0:MV701:1:q.1.1").is_err());
        assert!(Witness::parse("mv1:0:MV701:1").is_err());
        assert!(Witness::parse("mv1:0::1:-").is_err());
    }
}
