//! The exploration engine: BFS over scheduler-choice overrides.
//!
//! One `explore` call owns a booted [`System`] fork and searches the
//! universes reachable by overriding up to `max_depth` decision points.
//! The reference universe (no overrides) runs first with decision
//! recording on; its recording enumerates the candidate points, and its
//! observable *signature* is the baseline every other universe is
//! classified against. Universes are forked copy-on-write from the
//! nearest pooled ancestor snapshot rather than re-run from the root.

use std::collections::BTreeSet;

use p2012::{BlockReason, PeStatus, WatchKind};
use pedf::{ActorKind, ChoiceKind, ChoiceRec, DecisionPoint, LinkId, System};

use crate::rules;
use crate::witness::Witness;

/// Watch ids the engine installs for race sites live above this base so
/// they never collide with user watchpoints on the same fork.
const WATCH_ID_BASE: u32 = 0x4D56_0000; // "MV"

/// What the search is hunting. `Any` accepts the first witness of either
/// kind; the specific modes keep searching past the other kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Until {
    #[default]
    Any,
    Deadlock,
    Race,
}

impl Until {
    pub fn label(self) -> &'static str {
        match self {
            Until::Any => "any",
            Until::Deadlock => "deadlock",
            Until::Race => "race",
        }
    }

    fn accepts_deadlock(self) -> bool {
        matches!(self, Until::Any | Until::Deadlock)
    }

    fn accepts_race(self) -> bool {
        matches!(self, Until::Any | Until::Race)
    }
}

/// A statically reported racy address range to watch dynamically, with
/// the unordered actor pair it belongs to (ids for sleep-set pruning,
/// label for blame). Produced by the caller from `bcv`'s RACE401 sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceSite {
    pub lo: u32,
    pub hi: u32,
    /// The two unordered actors' ids (graph ActorId values).
    pub actors: (u32, u32),
    /// Human-readable pair label, e.g. `dec.hwcfg <-> dec.bh`.
    pub label: String,
}

/// Exploration parameters. The defaults match the CLI defaults.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Maximum universes run, including the reference.
    pub budget: usize,
    /// Cycles each universe may run past the root clock before being cut
    /// off (and checked for a wedge).
    pub horizon: u64,
    pub until: Until,
    /// Only the first this-many `ActorStart` decision points of the
    /// reference run are considered as override candidates.
    pub max_points: u64,
    /// Likewise for `DmaOrder` points.
    pub max_dma_points: u64,
    /// Maximum number of simultaneous overrides (BFS depth).
    pub max_depth: usize,
    /// Enable the sleep-set skip (race hunts only): ActorStart
    /// perturbations of actors that never touch a watched range are
    /// independent of every racy access and not worth running.
    pub sleep_sets: bool,
    /// Stop extending universes whose observable signature matches the
    /// reference exactly. Turning this off (together with `sleep_sets`)
    /// yields the brute-force enumeration of the same bounded space — the
    /// ground truth the fuzz farm's D8 oracle compares the optimized
    /// search against.
    pub prune_equivalent: bool,
    /// Maximum ancestor snapshots kept for COW forking (root excluded).
    pub pool_max: usize,
    /// Start-delay codes tried per `ActorStart` point (indices into
    /// `pedf::DELAYS`; 0 is the default and never a candidate).
    pub actor_codes: Vec<u8>,
    /// Rotation codes tried per `DmaOrder` point.
    pub dma_codes: Vec<u8>,
    /// Racy ranges to watch (empty: deadlock/wedge search only).
    pub race_sites: Vec<RaceSite>,
    /// State hash of the root system, stamped into witnesses so replay
    /// can refuse a mismatched machine.
    pub anchor: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            budget: 256,
            horizon: 20_000,
            until: Until::Any,
            max_points: 48,
            max_dma_points: 8,
            max_depth: 2,
            sleep_sets: true,
            prune_equivalent: true,
            pool_max: 8,
            actor_codes: vec![1, 2, 3, 4, 5, 6, 7],
            dma_codes: vec![1, 2],
            race_sites: Vec::new(),
            anchor: 0,
        }
    }
}

/// Counters the server exports per session and the bench reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    pub universes_forked: u64,
    pub universes_explored: u64,
    /// Universes whose observable signature matched the reference exactly
    /// (the perturbation commuted) — classified but not extended deeper.
    pub universes_pruned: u64,
    /// Candidate overrides skipped because the elected actor cannot touch
    /// a watched racy range (independent transition for this search).
    pub sleep_set_hits: u64,
    /// Peak bytes physically owned by pooled ancestor snapshots.
    pub peak_pool_bytes: u64,
    pub witnesses_found: u64,
    /// Decision points considered (after caps).
    pub actor_points: u64,
    pub dma_points: u64,
}

/// How a single universe's run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// All controllers exited; the app completed.
    Quiescent,
    /// Every PE blocked, nothing in flight, nothing retiring.
    Deadlock,
    /// A PE faulted.
    Fault,
    /// Still running at the horizon.
    Horizon,
}

impl Outcome {
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Quiescent => "quiescent",
            Outcome::Deadlock => "deadlock",
            Outcome::Fault => "fault",
            Outcome::Horizon => "horizon",
        }
    }
}

/// Result of one `explore` call.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// First (minimal) witness found, if any.
    pub witness: Option<Witness>,
    /// How the default-schedule reference universe ended.
    pub reference_outcome: Outcome,
    /// True when every candidate universe within depth/point caps was run
    /// (the no-witness answer is a refutation of the searched space, not
    /// a budget artifact).
    pub space_covered: bool,
    pub stats: ExploreStats,
    /// Deterministic, byte-stable log of the search.
    pub transcript: Vec<String>,
}

// ---- observable signature ----------------------------------------------

/// Everything observable about a finished universe. Two universes with
/// equal signatures (ignoring timing fields) took equivalent schedules:
/// the perturbation commuted with every conflicting access.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Signature {
    outcome: Outcome,
    fault: Option<String>,
    console: Vec<String>,
    /// Per sink: (consumed, checksum).
    sinks: Vec<(u64, u64)>,
    /// Per filter actor (graph order): steps completed.
    steps: Vec<u64>,
    /// Per link: (pushed, popped).
    fifo: Vec<(u64, u64)>,
    /// Watched racy accesses in order: (addr, was_write).
    hits: Vec<(u32, bool)>,
    /// Cycle of each hit (timing: excluded from equivalence).
    hit_cycles: Vec<u64>,
    /// Final clock (timing: excluded from equivalence).
    end_clock: u64,
}

impl Signature {
    /// Equivalence ignores *when* things happened, only what.
    fn equivalent(&self, other: &Signature) -> bool {
        self.outcome == other.outcome
            && self.fault == other.fault
            && self.console == other.console
            && self.sinks == other.sinks
            && self.steps == other.steps
            && self.fifo == other.fifo
            && self.hits == other.hits
    }

    /// Output as the environment sees it: console lines + sink streams.
    fn output_diverges(&self, other: &Signature) -> bool {
        self.console != other.console || self.sinks != other.sinks
    }
}

// ---- candidate enumeration ---------------------------------------------

/// One (decision point, override code) pair the search may try.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Candidate {
    kind: ChoiceKind,
    index: u64,
    code: u8,
    /// Actor id (`ActorStart`) or engine count (`DmaOrder`).
    subject: u32,
    clock: u64,
}

impl Candidate {
    fn rec(&self) -> ChoiceRec {
        ChoiceRec {
            kind: self.kind,
            index: self.index,
            code: self.code,
        }
    }
}

/// Enumerate candidates from the reference recording in deterministic
/// order: all `ActorStart` points by index, then all `DmaOrder` points,
/// each with its code alphabet. BFS visits them in this order, so the
/// first witness has the lexicographically-least override set of minimal
/// size.
fn enumerate_candidates(recording: &[DecisionPoint], cfg: &ExploreConfig) -> Vec<Candidate> {
    let mut points: Vec<&DecisionPoint> = recording
        .iter()
        .filter(|p| match p.kind {
            ChoiceKind::ActorStart => p.index < cfg.max_points,
            ChoiceKind::DmaOrder => p.index < cfg.max_dma_points,
        })
        .collect();
    points.sort_by_key(|p| (p.kind.tag(), p.index));
    points.dedup_by_key(|p| (p.kind, p.index));
    let mut out = Vec::new();
    for p in points {
        let codes = match p.kind {
            ChoiceKind::ActorStart => &cfg.actor_codes,
            ChoiceKind::DmaOrder => &cfg.dma_codes,
        };
        for &code in codes {
            if code == 0 {
                continue; // 0 is the default, not an override
            }
            out.push(Candidate {
                kind: p.kind,
                index: p.index,
                code,
                subject: p.subject,
                clock: p.clock,
            });
        }
    }
    out
}

// ---- universe execution ------------------------------------------------

/// Run `sys` until a terminal condition or the absolute-clock horizon,
/// draining engine watch hits each cycle. When `snapshot` is requested, a
/// COW fork is taken right after the last installed override's decision
/// is consumed (the cheapest point descendants can branch from) along
/// with the decision counters at that moment.
fn run_universe(
    sys: &mut System,
    horizon_abs: u64,
    n_watches: u32,
    overrides: &[ChoiceRec],
    snapshot: bool,
) -> (Signature, Option<(System, [u64; 2])>) {
    let mut hits: Vec<(u32, bool)> = Vec::new();
    let mut hit_cycles: Vec<u64> = Vec::new();
    let mut snap: Option<(System, [u64; 2])> = None;
    let want_snap = snapshot && !overrides.is_empty();
    let mut outcome = Outcome::Horizon;
    while sys.clock() < horizon_abs {
        let report = sys.step();
        if n_watches > 0 && sys.platform.mem.has_hits() {
            for h in sys.platform.mem.take_hits() {
                if h.id >= WATCH_ID_BASE && h.id < WATCH_ID_BASE + n_watches {
                    hits.push((h.addr, h.was_write));
                    hit_cycles.push(sys.clock());
                }
            }
        }
        if want_snap && snap.is_none() {
            let consumed = overrides
                .iter()
                .all(|o| sys.runtime.policy.decisions(o.kind) > o.index);
            if consumed {
                let counters = [
                    sys.runtime.policy.decisions(ChoiceKind::ActorStart),
                    sys.runtime.policy.decisions(ChoiceKind::DmaOrder),
                ];
                snap = Some((sys.fork(), counters));
            }
        }
        if sys.first_fault().is_some() {
            outcome = Outcome::Fault;
            break;
        }
        if sys.platform.is_quiescent() {
            outcome = Outcome::Quiescent;
            break;
        }
        // A machine can *look* deadlocked transiently (filters awaiting an
        // env-source token due next cycle, or a policy-deferred WORK start
        // still pending); requiring a fully dead cycle with no deferred
        // start filters those out.
        if report.executed == 0
            && report.completions == 0
            && !sys.runtime.pending_deferred(sys.clock())
            && sys.platform.is_deadlocked()
        {
            outcome = Outcome::Deadlock;
            break;
        }
    }
    let fault = sys.first_fault().map(|(pe, f)| format!("pe{} {f}", pe.0));
    let graph = &sys.runtime.graph;
    let steps = graph
        .filters()
        .map(|a| sys.runtime.steps_done(a.id))
        .collect();
    let fifo = (0..graph.links.len() as u32)
        .map(|l| sys.runtime.counters(LinkId(l)))
        .collect();
    let sinks = sys
        .runtime
        .sinks()
        .iter()
        .map(|s| (s.consumed, s.checksum))
        .collect();
    let sig = Signature {
        outcome,
        fault,
        console: sys.runtime.console.clone(),
        sinks,
        steps,
        fifo,
        hits,
        hit_cycles,
        end_clock: sys.clock(),
    };
    (sig, snap)
}

// ---- ancestor pool -----------------------------------------------------

/// A pooled snapshot: a universe frozen right after its overrides were
/// consumed, reusable as a fork base by any descendant whose extra
/// overrides all lie in the snapshot's future.
struct PoolEntry {
    key: Vec<ChoiceRec>,
    sys: System,
    counters: [u64; 2],
    tick: u64,
}

struct Pool {
    entries: Vec<PoolEntry>,
    next_tick: u64,
    max: usize,
}

impl Pool {
    fn new(root: System, max: usize) -> Pool {
        Pool {
            entries: vec![PoolEntry {
                key: Vec::new(),
                sys: root,
                counters: [0, 0],
                tick: 0,
            }],
            next_tick: 1,
            max,
        }
    }

    /// Fork the deepest usable ancestor for `overrides`: its key must be a
    /// subset of `overrides` and every remaining override's decision must
    /// still be ahead of the snapshot's counters.
    fn fork_for(&mut self, overrides: &[ChoiceRec]) -> System {
        let mut best = 0usize; // root always qualifies
        for (i, e) in self.entries.iter().enumerate().skip(1) {
            let subset = e.key.iter().all(|k| overrides.contains(k));
            if !subset {
                continue;
            }
            let future = overrides
                .iter()
                .filter(|o| !e.key.contains(o))
                .all(|o| e.counters[o.kind.slot()] <= o.index);
            if !future {
                continue;
            }
            let b = &self.entries[best];
            if e.key.len() > b.key.len() || (e.key.len() == b.key.len() && e.tick > b.tick) {
                best = i;
            }
        }
        self.entries[best].tick = self.next_tick;
        self.next_tick += 1;
        self.entries[best].sys.fork()
    }

    /// Insert a snapshot, evicting the least-recently-used non-root entry
    /// when full. Returns current pool payload bytes for peak tracking.
    fn insert(&mut self, key: Vec<ChoiceRec>, sys: System, counters: [u64; 2]) -> u64 {
        self.entries.push(PoolEntry {
            key,
            sys,
            counters,
            tick: self.next_tick,
        });
        self.next_tick += 1;
        while self.entries.len() > self.max + 1 {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .skip(1)
                .min_by_key(|(_, e)| e.tick)
                .map(|(i, _)| i)
                .expect("non-root entries exist");
            self.entries.remove(lru);
        }
        self.bytes()
    }

    fn bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.sys.platform.mem.owned_words() as u64 * 4)
            .sum()
    }
}

// ---- classification ----------------------------------------------------

/// Describe why a deadlocked machine is stuck: each blocked filter PE and
/// the FIFO edge it waits on.
fn blame_deadlock(sys: &System) -> String {
    let graph = &sys.runtime.graph;
    let mut parts = Vec::new();
    for (i, pe) in sys.platform.pes.iter().enumerate() {
        let (verb, link) = match pe.status {
            PeStatus::Blocked(BlockReason::TokenWait { link }) => ("awaits tokens on", link),
            PeStatus::Blocked(BlockReason::SpaceWait { link }) => ("awaits space on", link),
            _ => continue,
        };
        let who = graph
            .actors
            .iter()
            .find(|a| a.kind == ActorKind::Filter && a.pe.map(|p| p.index()) == Some(i))
            .map(|a| graph.qualified_name(a.id))
            .unwrap_or_else(|| format!("pe{i}"));
        if (link as usize) < graph.links.len() {
            parts.push(format!("{who} {verb} `{}`", graph.link_label(LinkId(link))));
        } else {
            parts.push(format!("{who} {verb} link #{link}"));
        }
        if parts.len() == 4 {
            parts.push("...".to_string());
            break;
        }
    }
    if parts.is_empty() {
        "all PEs blocked".to_string()
    } else {
        parts.join("; ")
    }
}

/// A universe that hit the horizon may still be a starvation witness: a
/// filter permanently parked on a FIFO wait while having made fewer steps
/// than it managed under the reference schedule.
fn blame_wedge(sys: &System, sig: &Signature, reference: &Signature) -> Option<String> {
    let graph = &sys.runtime.graph;
    for (fi, a) in graph.filters().enumerate() {
        if sig.steps.get(fi) >= reference.steps.get(fi) {
            continue;
        }
        let Some(pe) = a.pe else { continue };
        let (verb, link) = match sys.platform.pes[pe.index()].status {
            PeStatus::Blocked(BlockReason::TokenWait { link }) => ("awaits tokens on", link),
            PeStatus::Blocked(BlockReason::SpaceWait { link }) => ("awaits space on", link),
            _ => continue,
        };
        let edge = if (link as usize) < graph.links.len() {
            format!("`{}`", graph.link_label(LinkId(link)))
        } else {
            format!("link #{link}")
        };
        return Some(format!(
            "{} wedged at step {} (reference reached {}): {verb} {edge}",
            graph.qualified_name(a.id),
            sig.steps[fi],
            reference.steps[fi],
        ));
    }
    None
}

/// First index at which the watched access orders differ, if any.
fn first_hit_divergence(sig: &Signature, reference: &Signature) -> Option<usize> {
    if sig.hits == reference.hits {
        return None;
    }
    let i = sig
        .hits
        .iter()
        .zip(&reference.hits)
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| sig.hits.len().min(reference.hits.len()));
    Some(i)
}

/// Classify a universe against the reference; returns a witness when the
/// search mode accepts the observed failure.
fn classify(
    sys: &System,
    sig: &Signature,
    reference: &Signature,
    cfg: &ExploreConfig,
    overrides: &[ChoiceRec],
) -> Option<Witness> {
    if cfg.until.accepts_deadlock() {
        if sig.outcome == Outcome::Deadlock && reference.outcome != Outcome::Deadlock {
            return Some(Witness {
                anchor: cfg.anchor,
                rule: rules::WITNESSED_DEADLOCK.to_string(),
                failure_cycle: sig.end_clock,
                overrides: overrides.to_vec(),
                blame: blame_deadlock(sys),
            });
        }
        if sig.outcome == Outcome::Horizon && reference.outcome == Outcome::Quiescent {
            if let Some(blame) = blame_wedge(sys, sig, reference) {
                return Some(Witness {
                    anchor: cfg.anchor,
                    rule: rules::WITNESSED_DEADLOCK.to_string(),
                    failure_cycle: sig.end_clock,
                    overrides: overrides.to_vec(),
                    blame,
                });
            }
        }
    }
    // A race witness requires the access order to flip AND the output to
    // diverge *with the same amount of work done* — a universe that ended
    // early (deadlock, wedge, fault) trivially has different output, which
    // proves nothing about the racy values themselves.
    if cfg.until.accepts_race()
        && !cfg.race_sites.is_empty()
        && sig.outcome == reference.outcome
        && sig.steps == reference.steps
    {
        if let Some(i) = first_hit_divergence(sig, reference) {
            if sig.output_diverges(reference) {
                let cycle = sig.hit_cycles.get(i).copied().unwrap_or(sig.end_clock);
                let addr = sig
                    .hits
                    .get(i)
                    .or_else(|| reference.hits.get(i))
                    .map(|h| h.0);
                let site =
                    addr.and_then(|a| cfg.race_sites.iter().find(|s| s.lo <= a && a <= s.hi));
                let blame = match (site, addr) {
                    (Some(s), Some(a)) => format!(
                        "{}: access order flipped at 0x{a:08x}, output diverged",
                        s.label
                    ),
                    _ => "watched access order flipped, output diverged".to_string(),
                };
                return Some(Witness {
                    anchor: cfg.anchor,
                    rule: rules::WITNESSED_RACE.to_string(),
                    failure_cycle: cycle,
                    overrides: overrides.to_vec(),
                    blame,
                });
            }
        }
    }
    None
}

// ---- the search --------------------------------------------------------

fn fmt_overrides(ovs: &[ChoiceRec]) -> String {
    if ovs.is_empty() {
        return "-".to_string();
    }
    ovs.iter()
        .map(|o| o.to_string())
        .collect::<Vec<_>>()
        .join("+")
}

/// Explore scheduler interleavings of `root` (a booted system fork owned
/// by the caller) under `cfg`. Deterministic: same root + same config
/// produce a byte-identical report.
pub fn explore(mut root: System, cfg: &ExploreConfig) -> ExploreReport {
    let mut stats = ExploreStats::default();
    let mut transcript = Vec::new();
    transcript.push(format!(
        "explore: budget={} horizon={} until={} depth<={} points<={}+{} sleep-sets={} sites={}",
        cfg.budget,
        cfg.horizon,
        cfg.until.label(),
        cfg.max_depth,
        cfg.max_points,
        cfg.max_dma_points,
        if cfg.sleep_sets { "on" } else { "off" },
        cfg.race_sites.len(),
    ));

    let n_watches = cfg.race_sites.len() as u32;
    for (i, s) in cfg.race_sites.iter().enumerate() {
        root.platform
            .mem
            .add_watch(WATCH_ID_BASE + i as u32, s.lo, s.hi, WatchKind::Access);
        transcript.push(format!(
            "watch: [0x{:08x}, 0x{:08x}] {}",
            s.lo, s.hi, s.label
        ));
    }
    let horizon_abs = root.clock() + cfg.horizon;

    // Reference universe: default schedule, recording on.
    let mut ref_sys = root.fork();
    stats.universes_forked += 1;
    ref_sys.runtime.policy.recording = Some(Vec::new());
    let (reference, _) = run_universe(&mut ref_sys, horizon_abs, n_watches, &[], false);
    let recording = ref_sys.runtime.policy.recording.take().unwrap_or_default();
    stats.universes_explored += 1;
    transcript.push(format!(
        "reference: {}@{} console={} hits={} steps={:?}",
        reference.outcome.label(),
        reference.end_clock,
        reference.console.len(),
        reference.hits.len(),
        reference.steps,
    ));

    let candidates = enumerate_candidates(&recording, cfg);
    stats.actor_points = candidates
        .iter()
        .filter(|c| c.kind == ChoiceKind::ActorStart)
        .map(|c| c.index)
        .collect::<BTreeSet<_>>()
        .len() as u64;
    stats.dma_points = candidates
        .iter()
        .filter(|c| c.kind == ChoiceKind::DmaOrder)
        .map(|c| c.index)
        .collect::<BTreeSet<_>>()
        .len() as u64;
    transcript.push(format!(
        "points: {} actor-start, {} dma-order ({} candidates)",
        stats.actor_points,
        stats.dma_points,
        candidates.len(),
    ));

    // The default schedule failing is itself a (trivial, empty-trace)
    // witness — no search needed.
    if reference.outcome == Outcome::Deadlock && cfg.until.accepts_deadlock() {
        let w = Witness {
            anchor: cfg.anchor,
            rule: rules::WITNESSED_DEADLOCK.to_string(),
            failure_cycle: reference.end_clock,
            overrides: Vec::new(),
            blame: blame_deadlock(&ref_sys),
        };
        stats.witnesses_found = 1;
        transcript.push(format!("witness {w} blame={}", w.blame));
        return ExploreReport {
            witness: Some(w),
            reference_outcome: reference.outcome,
            space_covered: true,
            stats,
            transcript,
        };
    }

    // Sleep set: when hunting a race, an ActorStart perturbation of an
    // actor that never touches a watched range is independent of every
    // racy access and cannot flip their order.
    let racy_actors: BTreeSet<u32> = cfg
        .race_sites
        .iter()
        .flat_map(|s| [s.actors.0, s.actors.1])
        .collect();
    let sleep_skip = |c: &Candidate| -> bool {
        cfg.sleep_sets
            && cfg.until == Until::Race
            && !racy_actors.is_empty()
            && c.kind == ChoiceKind::ActorStart
            && !racy_actors.contains(&c.subject)
    };

    let mut pool = Pool::new(root, cfg.pool_max);
    stats.peak_pool_bytes = pool.bytes();
    let mut witness: Option<Witness> = None;
    let mut budget_cut = false;

    // BFS by override count: parents at depth d extend with candidates
    // strictly after their last one, so each override *set* runs once.
    let mut parents: Vec<(Vec<ChoiceRec>, usize)> = vec![(Vec::new(), 0)];
    'search: for _depth in 1..=cfg.max_depth {
        let mut next_parents: Vec<(Vec<ChoiceRec>, usize)> = Vec::new();
        for (base, start) in &parents {
            for (ci, cand) in candidates.iter().enumerate().skip(*start) {
                if base
                    .iter()
                    .any(|o| (o.kind, o.index) == (cand.kind, cand.index))
                {
                    continue; // same point already overridden in this set
                }
                if sleep_skip(cand) {
                    stats.sleep_set_hits += 1;
                    continue;
                }
                if stats.universes_explored as usize >= cfg.budget {
                    budget_cut = true;
                    break 'search;
                }
                let mut ovs = base.clone();
                ovs.push(cand.rec());
                let mut sys = pool.fork_for(&ovs);
                stats.universes_forked += 1;
                sys.runtime.policy.recording = None;
                sys.runtime.policy.set_overrides(&ovs);
                let may_extend = ovs.len() < cfg.max_depth;
                let (sig, snap) = run_universe(&mut sys, horizon_abs, n_watches, &ovs, may_extend);
                stats.universes_explored += 1;
                witness = classify(&sys, &sig, &reference, cfg, &ovs);
                if let Some(w) = &witness {
                    stats.witnesses_found = 1;
                    transcript.push(format!(
                        "u{:04} {} -> {}@{} WITNESS {}",
                        stats.universes_explored,
                        fmt_overrides(&ovs),
                        sig.outcome.label(),
                        sig.end_clock,
                        w.rule,
                    ));
                    break 'search;
                }
                if cfg.prune_equivalent && sig.equivalent(&reference) {
                    stats.universes_pruned += 1;
                    continue; // commuted with everything observable: don't extend
                }
                transcript.push(format!(
                    "u{:04} {} -> {}@{} diverges (console={} hits={} steps={:?})",
                    stats.universes_explored,
                    fmt_overrides(&ovs),
                    sig.outcome.label(),
                    sig.end_clock,
                    sig.console.len(),
                    sig.hits.len(),
                    sig.steps,
                ));
                if may_extend {
                    if let Some((snap_sys, counters)) = snap {
                        let bytes = pool.insert(ovs.clone(), snap_sys, counters);
                        stats.peak_pool_bytes = stats.peak_pool_bytes.max(bytes);
                    }
                    next_parents.push((ovs, ci + 1));
                }
            }
        }
        parents = next_parents;
        if parents.is_empty() {
            break;
        }
    }

    let space_covered = !budget_cut;
    match &witness {
        Some(w) => transcript.push(format!("witness {w} blame={}", w.blame)),
        None => transcript.push(format!(
            "no divergence witnessed: {}",
            if space_covered {
                "search space covered"
            } else {
                "budget exhausted"
            }
        )),
    }
    transcript.push(format!(
        "summary: forked={} explored={} pruned={} sleep-hits={} pool-peak={}B witnesses={}",
        stats.universes_forked,
        stats.universes_explored,
        stats.universes_pruned,
        stats.sleep_set_hits,
        stats.peak_pool_bytes,
        stats.witnesses_found,
    ));
    ExploreReport {
        witness,
        reference_outcome: reference.outcome,
        space_covered,
        stats,
        transcript,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(kind: ChoiceKind, index: u64, subject: u32) -> DecisionPoint {
        DecisionPoint {
            kind,
            index,
            subject,
            clock: 100 + index,
        }
    }

    #[test]
    fn candidates_are_capped_deduped_and_ordered() {
        let rec = vec![
            pt(ChoiceKind::ActorStart, 1, 7),
            pt(ChoiceKind::DmaOrder, 0, 2),
            pt(ChoiceKind::ActorStart, 0, 5),
            pt(ChoiceKind::ActorStart, 0, 5), // restored-checkpoint duplicate
            pt(ChoiceKind::ActorStart, 99, 6),
        ];
        let cfg = ExploreConfig {
            max_points: 48,
            actor_codes: vec![1, 4],
            dma_codes: vec![1],
            ..Default::default()
        };
        let cands = enumerate_candidates(&rec, &cfg);
        let recs: Vec<String> = cands.iter().map(|c| c.rec().to_string()).collect();
        // index 99 capped away; a.0 deduped; actor points before dma.
        assert_eq!(recs, ["a.0.1", "a.0.4", "a.1.1", "a.1.4", "d.0.1"]);
        assert_eq!(cands[0].subject, 5);
    }

    #[test]
    fn signature_equivalence_ignores_timing_only() {
        let base = Signature {
            outcome: Outcome::Quiescent,
            fault: None,
            console: vec!["8".into()],
            sinks: vec![(3, 42)],
            steps: vec![3, 3],
            fifo: vec![(3, 3)],
            hits: vec![(0x2000_f000, true)],
            hit_cycles: vec![100],
            end_clock: 2000,
        };
        let mut later = base.clone();
        later.hit_cycles = vec![108];
        later.end_clock = 2040;
        assert!(base.equivalent(&later));
        assert!(!base.output_diverges(&later));
        let mut flipped = base.clone();
        flipped.hits = vec![(0x2000_f000, false)];
        assert!(!base.equivalent(&flipped));
        assert_eq!(first_hit_divergence(&flipped, &base), Some(0));
        assert_eq!(first_hit_divergence(&later, &base), None);
        // Prefix divergence points at the first missing hit.
        let mut shorter = base.clone();
        shorter.hits.clear();
        shorter.hit_cycles.clear();
        assert_eq!(first_hit_divergence(&shorter, &base), Some(0));
    }
}
