//! Multiverse exploration engine (ROADMAP 5, after the MIO
//! multiverse-debugging model).
//!
//! The cycle-stepped simulator makes execution a pure function of
//! scheduler choices, reified by [`pedf::SchedulePolicy`] as numbered
//! decision points. This crate searches that choice space: it forks cheap
//! copy-on-write universes ([`pedf::System::fork`]) from a bounded,
//! LRU-evicted pool of ancestor snapshots, runs each universe under a
//! sparse set of choice *overrides*, and classifies the outcome against
//! the default-schedule reference universe.
//!
//! A universe is identified by its override set, so every result is
//! byte-replayable: install the same overrides in a live session and run.
//! The search is breadth-first by override count, which makes the first
//! witness found *minimal* (fewest scheduling perturbations). DPOR-style
//! sleep sets prune two classes of redundant universes: elections whose
//! actor cannot touch a watched racy address (independent transitions
//! when hunting a race), and universes whose observable signature is
//! identical to the reference (the perturbation commuted with every
//! conflicting access, so deeper extensions explore the same trace).
//!
//! Outcomes witnessed dynamically:
//! * **deadlock** (MV701) — every actor blocked, no DMA in flight, no
//!   instruction retired: the machine needs external action;
//! * **wedge/starvation** (MV701) — a filter stops making steps while the
//!   rest of the app runs, its PE parked in `TokenWait`/`SpaceWait`;
//! * **race** (MV702) — the order of conflicting accesses to a statically
//!   reported shared word flips *and* the observable output (console +
//!   sink checksums) diverges from the reference;
//! * **budget exhausted** (MV703) — no divergence found within budget;
//!   only a *bounded* refutation, reported as such.

mod engine;
mod witness;

pub use engine::{explore, ExploreConfig, ExploreReport, ExploreStats, Outcome, RaceSite, Until};
pub use witness::Witness;

/// Rule ids this engine emits (registered in `debuginfo::registry`).
pub mod rules {
    /// A schedule was found under which the application deadlocks or
    /// wedges; the witness choice trace replays it.
    pub const WITNESSED_DEADLOCK: &str = "MV701";
    /// A schedule was found that flips the order of statically racy
    /// accesses and changes the observable output.
    pub const WITNESSED_RACE: &str = "MV702";
    /// Exploration exhausted its universe budget without a witness — a
    /// bounded refutation, not a proof of absence.
    pub const BUDGET_EXHAUSTED: &str = "MV703";

    /// `(id, one-line summary)` for every rule, in id order — kept in
    /// lock-step with `debuginfo::registry` (pinned by a drift test).
    pub const ALL: &[(&str, &str)] = &[
        (
            WITNESSED_DEADLOCK,
            "witnessed schedule deadlocks or wedges the application",
        ),
        (
            WITNESSED_RACE,
            "witnessed schedule flips a racy access order and diverges output",
        ),
        (
            BUDGET_EXHAUSTED,
            "no divergence witnessed within the exploration budget",
        ),
    ];
}

#[cfg(test)]
mod tests {
    #[test]
    fn rule_table_matches_the_registry() {
        for (id, summary) in super::rules::ALL {
            let r = debuginfo::registry::find(id)
                .unwrap_or_else(|| panic!("{id} not in debuginfo::registry"));
            assert_eq!(r.summary, *summary, "{id} drifted");
        }
    }
}
