//! `bcv` — bytecode verifier and static shared-memory race analysis.
//!
//! Where the `dfa` crate reasons about the *source-level* dataflow program
//! (token rates, balance equations, kernel lints), `bcv` verifies the
//! artifact the machine actually runs: the linked bytecode image plus the
//! elaborated platform. Three layers, all static:
//!
//! 1. **Stack verification** ([`image`]) — per-function CFG + stack-depth
//!    proofs in the style of a JVM bytecode verifier (BCV2xx), plus a
//!    worst-case call-depth bound per actor against the VM's frame limit;
//! 2. **Memory classification** — interval abstract interpretation (the
//!    same lattice as `dfa::interval`) of every raw `LoadMem`/`StoreMem`
//!    address against the [`p2012::MemoryMap`]: statically unmapped or
//!    hole addresses, remote-cluster L1 traffic and out-of-frame computed
//!    local indexes (MEM3xx);
//! 3. **Race detection** ([`race`]) — a happens-before order derived from
//!    PEDF FIFO token dependencies and PE co-location; unordered firings
//!    with overlapping access ranges, or kernel accesses into DMA-managed
//!    boundary-FIFO windows, are reported with *both* source locations
//!    (RACE4xx).
//!
//! Findings share the [`debuginfo::Finding`] pipeline with `dfa`, so the
//! debugger's `analyze` command, the `--json` exporter and the graphviz
//! annotations treat both analyzers uniformly.

use std::collections::{BTreeMap, BTreeSet};

use debuginfo::{CodeAddr, Finding, LineTable, Severity, TypeTable};
use mind::CompiledApp;
use p2012::memory::{L1_BASE, L1_STRIDE};
use p2012::{MemoryMap, PeId, Program, Region, MAX_CALL_DEPTH};
use pedf::graph::ActorKind;
use pedf::{ActorId, AppGraph};

pub mod image;
pub mod race;

pub use debuginfo::render_findings;
pub use image::Access;

/// Stable rule identifiers. `BCV2xx` = bytecode/stack verification,
/// `MEM3xx` = static memory classification, `RACE4xx` = shared-memory
/// races.
pub mod rules {
    /// An instruction that pops more operands than the stack holds.
    pub const STACK_UNDERFLOW: &str = "BCV201";
    /// The operand stack provably grows past the VM limit.
    pub const STACK_OVERFLOW: &str = "BCV202";
    /// Control flow escapes the function's extent (fall-through or jump).
    pub const STACK_ESCAPE: &str = "BCV203";
    /// Two paths join with different stack depths.
    pub const STACK_JOIN: &str = "BCV204";
    /// Worst-case call depth exceeds (or cannot be bounded against) the
    /// VM's frame limit.
    pub const CALL_DEPTH: &str = "BCV205";
    /// A raw access to an address no memory region maps.
    pub const UNMAPPED_ACCESS: &str = "MEM301";
    /// A raw access landing in an unbacked hole of the L1 address window.
    pub const REGION_HOLE: &str = "MEM302";
    /// L1 traffic targeting a different cluster than the actor runs on.
    pub const CROSS_CLUSTER_L1: &str = "MEM303";
    /// A computed local index provably outside the function's frame.
    pub const LOCAL_INDEX_OOB: &str = "MEM304";
    /// Two unordered firings access overlapping memory, one writing.
    pub const UNORDERED_SHARED_ACCESS: &str = "RACE401";
    /// A kernel's raw access overlaps a DMA-managed boundary-FIFO window.
    pub const DMA_WINDOW_OVERLAP: &str = "RACE402";

    /// `(id, one-line summary)` for every rule, in id order — the source
    /// of the CLI's `analyze rules` listing and the README table.
    pub const ALL: &[(&str, &str)] = &[
        (STACK_UNDERFLOW, "operand stack underflow"),
        (STACK_OVERFLOW, "operand stack exceeds the VM limit"),
        (STACK_ESCAPE, "control flow escapes the function"),
        (STACK_JOIN, "unbalanced stack depth at a join"),
        (CALL_DEPTH, "worst-case call depth exceeds the VM limit"),
        (UNMAPPED_ACCESS, "access to a statically unmapped address"),
        (REGION_HOLE, "access into an unbacked L1 hole"),
        (CROSS_CLUSTER_L1, "L1 access targets a remote cluster"),
        (LOCAL_INDEX_OOB, "computed local index outside the frame"),
        (
            UNORDERED_SHARED_ACCESS,
            "unordered firings share memory with a write",
        ),
        (
            DMA_WINDOW_OVERLAP,
            "raw access overlaps a DMA transfer window",
        ),
    ];
}

/// Everything the verifier needs, detached from the live machine: the
/// linked image, the elaborated graph, the platform memory map and the
/// actor→PE→cluster placement. Build one with [`AnalysisInput::from_app`].
#[derive(Debug, Clone, Default)]
pub struct AnalysisInput {
    pub program: Program,
    pub graph: AppGraph,
    pub types: TypeTable,
    pub mem_map: MemoryMap,
    /// Every PE with its cluster (the host carries a pseudo-cluster of
    /// `u16::MAX` and never executes actors).
    pub pe_clusters: Vec<(PeId, u16)>,
    pub lines: LineTable,
}

impl AnalysisInput {
    pub fn from_app(app: &CompiledApp) -> AnalysisInput {
        AnalysisInput {
            program: app.program.clone(),
            graph: app.graph.clone(),
            types: app.types.clone(),
            mem_map: app.mem_map.clone(),
            pe_clusters: app.pe_clusters.clone(),
            lines: app.info.lines.clone(),
        }
    }
}

/// The combined verification result.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, sorted most severe first (then rule id, subject).
    pub findings: Vec<Finding>,
    /// Unordered actor-id pairs with a confirmed race, `(lo, hi)` sorted —
    /// the graphviz renderer draws these as dashed red edges.
    pub race_pairs: Vec<(u32, u32)>,
    /// The concrete overlapping address ranges behind `race_pairs`
    /// (RACE401 only) — the multiverse explorer watches these words to
    /// witness an access-order flip dynamically.
    pub race_sites: Vec<race::RaceSite>,
}

impl Report {
    /// Highest severity present, `None` when the report is clean.
    pub fn worst(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Render the findings table (shared format with the debugger CLI).
    pub fn table(&self) -> String {
        render_findings(&self.findings)
    }
}

/// Run all three verification layers over `input`.
pub fn verify(input: &AnalysisInput) -> Report {
    let prog = &input.program;
    let lines = &input.lines;
    let mut findings: Vec<Finding> = Vec::new();

    // Syntactic call graph first, so findings can be attributed to the
    // actors whose work functions reach them.
    let mut calls: BTreeMap<CodeAddr, BTreeSet<CodeAddr>> = BTreeMap::new();
    for f in &prog.funcs {
        let mut targets = BTreeSet::new();
        for pc in f.addr..f.end {
            if let Some(p2012::Insn::Call { addr, .. }) = prog.fetch(pc) {
                if let Some(callee) = prog.func_at(addr) {
                    targets.insert(callee.addr);
                }
            }
        }
        calls.insert(f.addr, targets);
    }
    let work_actors: Vec<(ActorId, CodeAddr)> = input
        .graph
        .actors
        .iter()
        .filter(|a| a.kind != ActorKind::Module)
        .filter_map(|a| {
            let entry = prog.func_at(a.work_addr?)?.addr;
            Some((a.id, entry))
        })
        .collect();
    let mut func_actors: BTreeMap<CodeAddr, BTreeSet<ActorId>> = BTreeMap::new();
    let mut actor_funcs: BTreeMap<ActorId, BTreeSet<CodeAddr>> = BTreeMap::new();
    for &(aid, entry) in &work_actors {
        let reach = image::reachable_funcs(&calls, entry);
        for &f in &reach {
            func_actors.entry(f).or_default().insert(aid);
        }
        actor_funcs.insert(aid, reach);
    }
    let subject_of = |faddr: CodeAddr| -> String {
        match func_actors.get(&faddr) {
            Some(aids) if !aids.is_empty() => aids
                .iter()
                .map(|&a| input.graph.qualified_name(a))
                .collect::<Vec<_>>()
                .join(", "),
            _ => "image".to_string(),
        }
    };

    // Layer 1+2a: per-function stack verification and access collection.
    let mut accesses: BTreeMap<CodeAddr, Vec<Access>> = BTreeMap::new();
    for f in &prog.funcs {
        let rep = image::verify_function(prog, f, &subject_of(f.addr), lines);
        findings.extend(rep.findings);
        accesses.insert(f.addr, rep.accesses);
    }

    // Layer 2b: classify the collected accesses against the memory map.
    let cluster_of: BTreeMap<u16, u16> = input.pe_clusters.iter().map(|&(p, c)| (p.0, c)).collect();
    for f in &prog.funcs {
        for acc in &accesses[&f.addr] {
            classify_access(input, &cluster_of, &func_actors, f.addr, acc, &mut findings);
        }
    }

    // Layer 1b: worst-case call depth per actor against the VM frame limit.
    for &(aid, entry) in &work_actors {
        let qname = input.graph.qualified_name(aid);
        let fi = match image::max_call_depth(&calls, entry) {
            None => Some(Finding::new(
                rules::CALL_DEPTH,
                Severity::Warning,
                qname,
                format!(
                    "recursive call cycle: worst-case call depth cannot be bounded \
                     (VM limit is {MAX_CALL_DEPTH} frames)"
                ),
            )),
            Some(d) if d > MAX_CALL_DEPTH as u64 => Some(Finding::new(
                rules::CALL_DEPTH,
                Severity::Error,
                qname,
                format!(
                    "worst-case call depth {d} exceeds the VM limit of {MAX_CALL_DEPTH} frames"
                ),
            )),
            Some(_) => None,
        };
        if let Some(mut fi) = fi {
            if let Some(sp) = image::span_at(lines, entry) {
                fi = fi.with_span(sp);
            }
            findings.push(fi);
        }
    }

    // Layer 3: happens-before race detection over per-actor access sets.
    let actor_accesses: Vec<race::ActorAccesses> = actor_funcs
        .iter()
        .map(|(&aid, funcs)| race::ActorAccesses {
            id: aid,
            accesses: funcs
                .iter()
                .flat_map(|f| accesses[f].iter().copied())
                .collect(),
        })
        .collect();
    let (race_findings, race_pairs, race_sites) =
        race::find_races(&input.graph, &input.types, &actor_accesses, lines);
    findings.extend(race_findings);

    debuginfo::sort_and_dedup_findings(&mut findings);
    Report {
        findings,
        race_pairs,
        race_sites,
    }
}

/// Mapped `[lo, hi]` word ranges of the platform, with their regions.
fn mapped_ranges(map: &MemoryMap) -> Vec<(u32, u32, Region)> {
    let mut out = Vec::new();
    for c in 0..map.clusters {
        let base = map.l1_base(c);
        out.push((base, base + map.l1_words - 1, Region::L1 { cluster: c }));
    }
    out.push((
        p2012::memory::L2_BASE,
        p2012::memory::L2_BASE + map.l2_words - 1,
        Region::L2,
    ));
    out.push((
        p2012::memory::L3_BASE,
        p2012::memory::L3_BASE + map.l3_words - 1,
        Region::L3,
    ));
    out
}

fn classify_access(
    input: &AnalysisInput,
    cluster_of: &BTreeMap<u16, u16>,
    func_actors: &BTreeMap<CodeAddr, BTreeSet<ActorId>>,
    faddr: CodeAddr,
    acc: &Access,
    findings: &mut Vec<Finding>,
) {
    let subject = match func_actors.get(&faddr) {
        Some(aids) if !aids.is_empty() => aids
            .iter()
            .map(|&a| input.graph.qualified_name(a))
            .collect::<Vec<_>>()
            .join(", "),
        _ => "image".to_string(),
    };
    let verb = if acc.write { "store to" } else { "load from" };
    let push =
        |rule: &'static str, sev: Severity, subj: String, msg: String, out: &mut Vec<Finding>| {
            let mut fi = Finding::new(rule, sev, subj, msg);
            if let Some(sp) = image::span_at(&input.lines, acc.pc) {
                fi = fi.with_span(sp);
            }
            out.push(fi);
        };
    let ranges = mapped_ranges(&input.mem_map);
    let hits: Vec<&(u32, u32, Region)> = ranges
        .iter()
        .filter(|(lo, hi, _)| acc.overlaps(*lo, *hi))
        .collect();
    if hits.is_empty() {
        let l1_window_end = L1_BASE + u32::from(input.mem_map.clusters) * L1_STRIDE - 1;
        if acc.overlaps(L1_BASE, l1_window_end) {
            push(
                rules::REGION_HOLE,
                Severity::Error,
                subject,
                format!(
                    "{verb} [0x{:08x}, 0x{:08x}] lands in an unbacked hole of the L1 window \
                     (each bank maps {} words)",
                    acc.lo, acc.hi, input.mem_map.l1_words
                ),
                findings,
            );
        } else {
            push(
                rules::UNMAPPED_ACCESS,
                Severity::Error,
                subject,
                format!(
                    "{verb} [0x{:08x}, 0x{:08x}]: no memory region maps this address",
                    acc.lo, acc.hi
                ),
                findings,
            );
        }
        return;
    }
    // Fully inside a single region: cluster-locality check for L1.
    if let [&(lo, hi, Region::L1 { cluster })] = hits.as_slice() {
        if acc.lo >= lo && acc.hi <= hi {
            let Some(aids) = func_actors.get(&faddr) else {
                return;
            };
            for &aid in aids {
                let actor = input.graph.actor(aid);
                let Some(pe) = actor.pe else { continue };
                let Some(&ac) = cluster_of.get(&pe.0) else {
                    continue;
                };
                if ac != u16::MAX && ac != cluster {
                    push(
                        rules::CROSS_CLUSTER_L1,
                        Severity::Warning,
                        input.graph.qualified_name(aid),
                        format!(
                            "{verb} [0x{:08x}, 0x{:08x}] targets cluster {cluster} L1 but the \
                             actor runs on cluster {ac} — remote L1 traffic",
                            acc.lo, acc.hi
                        ),
                        findings,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2012::{Insn, ProgramBuilder};
    use pedf::graph::{Dir, LinkClass};

    #[test]
    fn rules_table_matches_the_registry() {
        for (id, summary) in rules::ALL {
            let r = debuginfo::registry::find(id)
                .unwrap_or_else(|| panic!("{id} missing from debuginfo::registry"));
            assert_eq!(r.summary, *summary, "{id} summary drifted");
        }
    }

    fn base_input(program: Program) -> AnalysisInput {
        AnalysisInput {
            program,
            graph: AppGraph::new(),
            types: TypeTable::new(),
            mem_map: MemoryMap::default(),
            pe_clusters: vec![(PeId(0), 0), (PeId(1), 1)],
            lines: LineTable::default(),
        }
    }

    fn one_actor(g: &mut AppGraph, id: u32, name: &str, pe: u16, work: CodeAddr) -> ActorId {
        g.register_actor(
            id,
            name,
            ActorKind::Filter,
            None,
            Some(PeId(pe)),
            Some(work),
        )
        .unwrap()
    }

    fn rule_ids(r: &Report) -> Vec<&'static str> {
        r.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn clean_function_verifies_clean() {
        let mut b = ProgramBuilder::new();
        b.begin_func(1);
        b.emit(Insn::Enter(2));
        b.emit(Insn::LoadLocal(0));
        b.emit(Insn::Const(2));
        b.emit(Insn::Add);
        b.emit(Insn::Ret { retc: 1 });
        let r = verify(&base_input(b.finish()));
        assert!(r.findings.is_empty(), "{}", r.table());
        assert_eq!(r.worst(), None);
    }

    #[test]
    fn underflow_is_bcv201() {
        let mut b = ProgramBuilder::new();
        b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Add);
        b.emit(Insn::Halt);
        let r = verify(&base_input(b.finish()));
        assert_eq!(rule_ids(&r), vec![rules::STACK_UNDERFLOW]);
        assert_eq!(r.worst(), Some(Severity::Error));
    }

    #[test]
    fn overflow_is_bcv202() {
        let mut b = ProgramBuilder::new();
        b.begin_func(0);
        b.emit(Insn::Enter(0));
        for _ in 0..=p2012::MAX_OPERAND_STACK {
            b.emit(Insn::Const(1));
        }
        b.emit(Insn::Halt);
        let r = verify(&base_input(b.finish()));
        assert_eq!(rule_ids(&r), vec![rules::STACK_OVERFLOW]);
    }

    #[test]
    fn fall_through_is_bcv203() {
        let mut b = ProgramBuilder::new();
        b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Const(1));
        b.emit(Insn::Drop);
        let r = verify(&base_input(b.finish()));
        assert_eq!(rule_ids(&r), vec![rules::STACK_ESCAPE]);
    }

    #[test]
    fn unbalanced_join_is_bcv204() {
        let mut b = ProgramBuilder::new();
        b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Const(0));
        let merge = b.new_label();
        b.jump_if_zero(merge);
        b.emit(Insn::Const(7)); // one path arrives with an extra operand
        b.bind(merge);
        b.emit(Insn::Halt);
        let r = verify(&base_input(b.finish()));
        assert_eq!(rule_ids(&r), vec![rules::STACK_JOIN]);
    }

    #[test]
    fn recursion_is_bcv205() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Call { addr: f, argc: 0 });
        b.emit(Insn::Ret { retc: 0 });
        let mut input = base_input(b.finish());
        one_actor(&mut input.graph, 0, "rec", 0, f + 1);
        let r = verify(&input);
        assert_eq!(rule_ids(&r), vec![rules::CALL_DEPTH]);
        assert_eq!(r.findings[0].severity, Severity::Warning);
        assert_eq!(r.findings[0].subject, "rec");
    }

    #[test]
    fn unmapped_store_is_mem301() {
        let mut b = ProgramBuilder::new();
        b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Const(0xdead_beef));
        b.emit(Insn::Const(7));
        b.emit(Insn::StoreMem);
        b.emit(Insn::Halt);
        let r = verify(&base_input(b.finish()));
        assert_eq!(rule_ids(&r), vec![rules::UNMAPPED_ACCESS]);
        assert_eq!(r.findings[0].subject, "image");
    }

    #[test]
    fn l1_hole_store_is_mem302() {
        let map = MemoryMap::default();
        let hole = L1_BASE + map.l1_words; // first word past bank 0's backing
        assert!(map.decode(hole).is_err());
        let mut b = ProgramBuilder::new();
        b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Const(hole));
        b.emit(Insn::Const(1));
        b.emit(Insn::StoreMem);
        b.emit(Insn::Halt);
        let r = verify(&base_input(b.finish()));
        assert_eq!(rule_ids(&r), vec![rules::REGION_HOLE]);
    }

    #[test]
    fn remote_l1_load_is_mem303_warning() {
        let map = MemoryMap::default();
        let mut b = ProgramBuilder::new();
        let f = b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Const(map.l1_base(1)));
        b.emit(Insn::LoadMem);
        b.emit(Insn::Drop);
        b.emit(Insn::Ret { retc: 0 });
        let mut input = base_input(b.finish());
        one_actor(&mut input.graph, 0, "near", 0, f); // runs on cluster 0
        let r = verify(&input);
        assert_eq!(rule_ids(&r), vec![rules::CROSS_CLUSTER_L1]);
        assert_eq!(r.findings[0].severity, Severity::Warning);
        assert_eq!(r.findings[0].subject, "near");
    }

    #[test]
    fn computed_local_index_oob_is_mem304() {
        let mut b = ProgramBuilder::new();
        b.begin_func(0);
        b.emit(Insn::Enter(2));
        b.emit(Insn::Const(5)); // offset: slot 0 + 5 misses a 2-slot frame
        b.emit(Insn::Const(9)); // value
        b.emit(Insn::StoreLocalIdx(0));
        b.emit(Insn::Halt);
        let r = verify(&base_input(b.finish()));
        assert_eq!(rule_ids(&r), vec![rules::LOCAL_INDEX_OOB]);
    }

    /// Emit a work function storing `value` to the exact address `addr`.
    fn store_fn(b: &mut ProgramBuilder, addr: u32, value: u32) -> CodeAddr {
        let f = b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Const(addr));
        b.emit(Insn::Const(value));
        b.emit(Insn::StoreMem);
        b.emit(Insn::Ret { retc: 0 });
        f
    }

    #[test]
    fn unordered_shared_store_is_race401() {
        let mut b = ProgramBuilder::new();
        let fa = store_fn(&mut b, 0x2000_f000, 1);
        let fb = store_fn(&mut b, 0x2000_f000, 2);
        let mut input = base_input(b.finish());
        one_actor(&mut input.graph, 0, "a", 0, fa);
        one_actor(&mut input.graph, 1, "b", 1, fb);
        let r = verify(&input);
        assert_eq!(rule_ids(&r), vec![rules::UNORDERED_SHARED_ACCESS]);
        assert_eq!(r.findings[0].subject, "a <-> b");
        assert_eq!(r.race_pairs, vec![(0, 1)]);
    }

    #[test]
    fn token_dependency_orders_the_pair() {
        let mut b = ProgramBuilder::new();
        let fa = store_fn(&mut b, 0x2000_f000, 1);
        let fb = store_fn(&mut b, 0x2000_f000, 2);
        let mut input = base_input(b.finish());
        let a = one_actor(&mut input.graph, 0, "a", 0, fa);
        let bb = one_actor(&mut input.graph, 1, "b", 1, fb);
        let o = input
            .graph
            .register_conn(0, a, "out", Dir::Out, TypeTable::U32)
            .unwrap();
        let i = input
            .graph
            .register_conn(1, bb, "inp", Dir::In, TypeTable::U32)
            .unwrap();
        input
            .graph
            .register_link(0, o, i, 4, LinkClass::Data, 0x3000_0100)
            .unwrap();
        let r = verify(&input);
        assert!(r.findings.is_empty(), "{}", r.table());
        assert!(r.race_pairs.is_empty());
    }

    #[test]
    fn same_pe_orders_the_pair() {
        let mut b = ProgramBuilder::new();
        let fa = store_fn(&mut b, 0x2000_f000, 1);
        let fb = store_fn(&mut b, 0x2000_f000, 2);
        let mut input = base_input(b.finish());
        one_actor(&mut input.graph, 0, "a", 0, fa);
        one_actor(&mut input.graph, 1, "b", 0, fb); // same PE: serialized
        let r = verify(&input);
        assert!(r.findings.is_empty(), "{}", r.table());
    }

    #[test]
    fn read_read_sharing_is_not_a_race() {
        let mut b = ProgramBuilder::new();
        let load_fn = |b: &mut ProgramBuilder| {
            let f = b.begin_func(0);
            b.emit(Insn::Enter(0));
            b.emit(Insn::Const(0x2000_f000));
            b.emit(Insn::LoadMem);
            b.emit(Insn::Drop);
            b.emit(Insn::Ret { retc: 0 });
            f
        };
        let fa = load_fn(&mut b);
        let fb = load_fn(&mut b);
        let mut input = base_input(b.finish());
        one_actor(&mut input.graph, 0, "a", 0, fa);
        one_actor(&mut input.graph, 1, "b", 1, fb);
        let r = verify(&input);
        assert!(r.findings.is_empty(), "{}", r.table());
    }

    #[test]
    fn store_into_dma_window_is_race402() {
        let mut b = ProgramBuilder::new();
        let fa = store_fn(&mut b, 0x3000_0002, 1); // inside the 4-token window
        let fprod = b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Ret { retc: 0 });
        let fcons = b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Ret { retc: 0 });
        let mut input = base_input(b.finish());
        let p = one_actor(&mut input.graph, 0, "prod", 0, fprod);
        let c = one_actor(&mut input.graph, 1, "cons", 1, fcons);
        one_actor(&mut input.graph, 2, "rogue", 0, fa);
        let o = input
            .graph
            .register_conn(0, p, "out", Dir::Out, TypeTable::U32)
            .unwrap();
        let i = input
            .graph
            .register_conn(1, c, "inp", Dir::In, TypeTable::U32)
            .unwrap();
        input
            .graph
            .register_link(0, o, i, 4, LinkClass::DmaControl, 0x3000_0000)
            .unwrap();
        let r = verify(&input);
        assert_eq!(rule_ids(&r), vec![rules::DMA_WINDOW_OVERLAP]);
        assert_eq!(r.findings[0].subject, "rogue <-> dma");
        assert!(r.findings[0].message.contains("0x30000000"));
    }

    #[test]
    fn rules_table_is_sorted_and_unique() {
        let ids: Vec<&str> = rules::ALL.iter().map(|(id, _)| *id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn verify_is_deterministic() {
        let mut b = ProgramBuilder::new();
        let fa = store_fn(&mut b, 0x2000_f000, 1);
        let fb = store_fn(&mut b, 0x2000_f000, 2);
        let f3 = store_fn(&mut b, 0xdead_beef, 3);
        let mut input = base_input(b.finish());
        one_actor(&mut input.graph, 0, "a", 0, fa);
        one_actor(&mut input.graph, 1, "b", 1, fb);
        one_actor(&mut input.graph, 2, "c", 0, f3);
        let r1 = verify(&input);
        let r2 = verify(&input);
        assert_eq!(r1.table(), r2.table());
        assert_eq!(
            debuginfo::render_findings_json(&r1.findings),
            debuginfo::render_findings_json(&r2.findings)
        );
        assert_eq!(r1.race_pairs, r2.race_pairs);
    }
}
