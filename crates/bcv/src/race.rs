//! Static happens-before and shared-memory overlap analysis.
//!
//! PEDF's execution model gives the verifier a cheap partial order: two
//! firings are ordered when they run on the same PE (the cooperative
//! scheduler serializes them) or when a chain of FIFO token dependencies
//! connects their actors — a consumer firing cannot start before the
//! producer firing that fed it. Any other pair of firings may interleave
//! freely, so two raw accesses to overlapping word ranges with at least
//! one write are a data race (RACE401).
//!
//! Host-side DMA transfers are ordered with *nothing* on the fabric: the
//! engine copies boundary-FIFO windows whenever requests are pending. A
//! kernel that touches such a window with raw loads/stores (instead of
//! push/pop traps) races the engine itself (RACE402).

use std::collections::{BTreeMap, BTreeSet};

use debuginfo::{Finding, LineTable, Severity, TypeTable};
use pedf::graph::{ActorKind, LinkClass};
use pedf::{ActorId, AppGraph};

use crate::image::{describe_pc, span_at, Access};
use crate::rules;

/// Per-actor view the race pass needs.
pub struct ActorAccesses {
    pub id: ActorId,
    pub accesses: Vec<Access>,
}

/// One statically detected RACE401 site: the unordered actor pair and the
/// overlapping word range their raw accesses share. The dynamic witness
/// machinery watches `[lo, hi]` to observe the access order actually
/// taken by a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceSite {
    pub a: ActorId,
    pub b: ActorId,
    pub lo: u32,
    pub hi: u32,
}

/// Transitive reachability over data links, treating module actors as
/// opaque (a module's boundary conns are aliases resolved by the
/// elaborator; routing *through* a module node would invent false
/// orderings between unrelated streams).
fn reach_map(graph: &AppGraph) -> BTreeMap<ActorId, BTreeSet<ActorId>> {
    let mut edges: BTreeMap<ActorId, BTreeSet<ActorId>> = BTreeMap::new();
    for l in graph.data_links() {
        let (fa, ta) = graph.link_ends(l.id);
        if graph.actor(fa).kind == ActorKind::Module || graph.actor(ta).kind == ActorKind::Module {
            continue;
        }
        edges.entry(fa).or_default().insert(ta);
    }
    let mut reach = BTreeMap::new();
    for a in &graph.actors {
        let mut seen = BTreeSet::new();
        let mut work = vec![a.id];
        while let Some(x) = work.pop() {
            if let Some(next) = edges.get(&x) {
                for &n in next {
                    if seen.insert(n) {
                        work.push(n);
                    }
                }
            }
        }
        reach.insert(a.id, seen);
    }
    reach
}

/// Detect RACE401/RACE402 over the collected per-actor accesses. Returns
/// the findings plus the offending actor pairs (for graph annotation).
pub fn find_races(
    graph: &AppGraph,
    types: &TypeTable,
    actors: &[ActorAccesses],
    lines: &LineTable,
) -> (Vec<Finding>, Vec<(u32, u32)>, Vec<RaceSite>) {
    let mut findings = Vec::new();
    let mut pairs: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut sites: Vec<RaceSite> = Vec::new();
    let reach = reach_map(graph);
    let same_pe = |a: ActorId, b: ActorId| {
        let (pa, pb) = (graph.actor(a).pe, graph.actor(b).pe);
        pa.is_some() && pa == pb
    };
    let ordered =
        |a: ActorId, b: ActorId| same_pe(a, b) || reach[&a].contains(&b) || reach[&b].contains(&a);

    // RACE401: unordered actor pairs with overlapping accesses, one a write.
    for (i, a) in actors.iter().enumerate() {
        for b in &actors[i + 1..] {
            if ordered(a.id, b.id) {
                continue;
            }
            let hit = a.accesses.iter().find_map(|x| {
                b.accesses
                    .iter()
                    .find(|y| x.overlaps(y.lo, y.hi) && (x.write || y.write))
                    .map(|y| (x, y))
            });
            let Some((x, y)) = hit else { continue };
            let (qa, qb) = (graph.qualified_name(a.id), graph.qualified_name(b.id));
            let verb = |w: bool| if w { "writes" } else { "reads" };
            let mut fi = Finding::new(
                rules::UNORDERED_SHARED_ACCESS,
                Severity::Error,
                format!("{qa} <-> {qb}"),
                format!(
                    "`{qa}` {} [0x{:08x}, 0x{:08x}] while `{qb}` {} [0x{:08x}, 0x{:08x}] at {} \
                     (0x{:04x}); no token dependency or PE orders the firings",
                    verb(x.write),
                    x.lo,
                    x.hi,
                    verb(y.write),
                    y.lo,
                    y.hi,
                    describe_pc(lines, y.pc),
                    y.pc
                ),
            );
            if let Some(sp) = span_at(lines, x.pc) {
                fi = fi.with_span(sp);
            }
            findings.push(fi);
            let (lo, hi) = if a.id.0 <= b.id.0 {
                (a.id.0, b.id.0)
            } else {
                (b.id.0, a.id.0)
            };
            pairs.insert((lo, hi));
            sites.push(RaceSite {
                a: ActorId(lo),
                b: ActorId(hi),
                lo: x.lo.max(y.lo),
                hi: x.hi.min(y.hi),
            });
        }
    }

    // RACE402: raw kernel accesses into a DMA-managed boundary FIFO window.
    for l in graph
        .links
        .iter()
        .filter(|l| l.class == LinkClass::DmaControl)
    {
        let words = l.capacity * types.size_words(graph.conn(l.from).ty);
        if words == 0 {
            continue;
        }
        let (win_lo, win_hi) = (l.fifo_base, l.fifo_base + words - 1);
        let (fa, ta) = graph.link_ends(l.id);
        let fabric_end = [fa, ta]
            .into_iter()
            .find(|&x| graph.actor(x).kind != ActorKind::Module);
        for a in actors {
            let Some(x) = a.accesses.iter().find(|x| x.overlaps(win_lo, win_hi)) else {
                continue;
            };
            let qa = graph.qualified_name(a.id);
            let mut fi = Finding::new(
                rules::DMA_WINDOW_OVERLAP,
                Severity::Error,
                format!("{qa} <-> dma"),
                format!(
                    "raw {} of [0x{:08x}, 0x{:08x}] overlaps the DMA transfer window \
                     [0x{win_lo:08x}, 0x{win_hi:08x}] of link `{}`; host DMA is not ordered \
                     with this firing",
                    if x.write { "store" } else { "load" },
                    x.lo,
                    x.hi,
                    graph.link_label(l.id)
                ),
            );
            if let Some(sp) = span_at(lines, x.pc) {
                fi = fi.with_span(sp);
            }
            findings.push(fi);
            if let Some(other) = fabric_end {
                let (lo, hi) = if a.id.0 <= other.0 {
                    (a.id.0, other.0)
                } else {
                    (other.0, a.id.0)
                };
                pairs.insert((lo, hi));
            }
        }
    }
    sites.sort_by_key(|s| (s.a.0, s.b.0, s.lo, s.hi));
    sites.dedup();
    (findings, pairs.into_iter().collect(), sites)
}
