//! Function-level verification of a linked program image.
//!
//! Two passes per [`FuncMeta`], mirroring a classic bytecode verifier:
//!
//! 1. a **stack-depth pass** over the function's CFG proving every
//!    instruction has its operands, the operand stack stays within the VM
//!    limit, control flow never escapes the function's extent, and joins
//!    agree on depth (BCV201–BCV204);
//! 2. an **interval abstract interpretation** (reusing [`dfa::interval`])
//!    that tracks value ranges through locals and the operand stack to
//!    collect every raw `LoadMem`/`StoreMem` address range and to prove
//!    computed local indexes stay inside the frame (MEM304).
//!
//! Pass 2 only runs when pass 1 is clean — a function with inconsistent
//! stack depths has no well-defined abstract state to join.

use std::collections::{BTreeMap, BTreeSet};

use debuginfo::{CodeAddr, Finding, LineTable, Severity, Span};
use dfa::interval::Iv;
use p2012::{isa::FuncMeta, Insn, Program, MAX_OPERAND_STACK};

use crate::rules;

/// Number of fixpoint visits to a program point before widening kicks in.
const WIDEN_AFTER: u32 = 4;

/// Widest representable interval (top for widening; [`Iv::top`] is the
/// *unsigned* word range and would lose definitely-negative values).
fn full() -> Iv {
    Iv::new(-dfa::interval::INF, dfa::interval::INF)
}

/// One raw memory access discovered in a function: the instruction and the
/// bounded, inclusive word-address range it may touch. Unbounded addresses
/// are not recorded — they carry no actionable overlap information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    pub pc: CodeAddr,
    pub lo: u32,
    pub hi: u32,
    pub write: bool,
}

impl Access {
    pub fn overlaps(&self, lo: u32, hi: u32) -> bool {
        self.lo <= hi && lo <= self.hi
    }
}

/// Verification result for one function.
#[derive(Debug, Default)]
pub struct FuncReport {
    pub findings: Vec<Finding>,
    pub accesses: Vec<Access>,
    /// Entry addresses of functions this one calls (normalized to
    /// [`FuncMeta::addr`]).
    pub calls: BTreeSet<CodeAddr>,
}

/// Build a source span for `pc`, if the line table covers it (runtime
/// stubs and boot code have symbols but no line rows).
pub fn span_at(lines: &LineTable, pc: CodeAddr) -> Option<Span> {
    lines.lookup(pc).map(|e| Span {
        file: lines.file_name(e.file).to_string(),
        line: e.line,
        col: 0,
        addr: Some(pc),
    })
}

/// Human location for `pc`: `file:line` or a bare hex address.
pub fn describe_pc(lines: &LineTable, pc: CodeAddr) -> String {
    match lines.lookup(pc) {
        Some(e) => format!("{}:{}", lines.file_name(e.file), e.line),
        None => format!("0x{pc:04x}"),
    }
}

/// How many values the first `Ret` of the function containing `addr`
/// pushes back to its caller (0 when unknown — e.g. a call into the void).
fn ret_count(prog: &Program, addr: CodeAddr) -> u8 {
    let Some(f) = prog.func_at(addr) else {
        return 0;
    };
    for pc in f.addr..f.end {
        if let Some(Insn::Ret { retc }) = prog.fetch(pc) {
            return retc;
        }
    }
    0
}

/// Net stack effect of `insn` as `(pops, pushes)`.
fn effect(prog: &Program, insn: Insn) -> (usize, usize) {
    use Insn::*;
    match insn {
        Enter(_) | Nop | Jump(_) | Halt => (0, 0),
        Const(_) | LoadLocal(_) => (0, 1),
        StoreLocal(_) | Drop | JumpIfZero(_) | JumpIfNot(_) => (1, 0),
        LoadLocalIdx(_) | Neg | Not | BitNot | LoadMem => (1, 1),
        StoreLocalIdx(_) | StoreMem => (2, 0),
        Dup => (1, 2),
        Swap => (2, 2),
        Add | Sub | Mul | Div | Rem | BitAnd | BitOr | BitXor | Shl | Shr | Sar | Eq | Ne | LtS
        | LeS | GtS | GeS | LtU | GeU => (2, 1),
        Call { addr, argc } => (argc as usize, ret_count(prog, addr) as usize),
        Ret { retc } => (retc as usize, 0),
        Trap { argc, retc, .. } => (argc as usize, retc as usize),
    }
}

/// Successor program points of `insn` at `pc`. Empty for terminators.
fn successors(insn: Insn, pc: CodeAddr) -> Vec<CodeAddr> {
    use Insn::*;
    match insn {
        Jump(t) => vec![t],
        JumpIfZero(t) | JumpIfNot(t) => vec![pc + 1, t],
        Ret { .. } | Halt => vec![],
        _ => vec![pc + 1],
    }
}

/// Pass 1: prove stack-depth consistency over the function's CFG.
/// Reports at most one finding per rule per function (a single broken
/// join would otherwise cascade into dozens of identical diagnostics).
/// Returns `true` when the function is clean.
fn check_depths(
    prog: &Program,
    f: &FuncMeta,
    subject: &str,
    lines: &LineTable,
    findings: &mut Vec<Finding>,
) -> bool {
    let mut emitted: BTreeSet<&'static str> = BTreeSet::new();
    let mut emit = |rule: &'static str, pc: CodeAddr, msg: String, out: &mut Vec<Finding>| {
        if emitted.insert(rule) {
            let mut fi = Finding::new(rule, Severity::Error, subject, msg);
            if let Some(sp) = span_at(lines, pc) {
                fi = fi.with_span(sp);
            }
            out.push(fi);
        }
    };
    let mut depth_in: BTreeMap<CodeAddr, i64> = BTreeMap::new();
    let mut work = vec![f.addr];
    depth_in.insert(f.addr, 0);
    while let Some(pc) = work.pop() {
        let depth = depth_in[&pc];
        let Some(insn) = prog.fetch(pc) else {
            emit(
                rules::STACK_ESCAPE,
                pc,
                format!("pc 0x{pc:04x} is outside the program image"),
                findings,
            );
            continue;
        };
        let (pops, pushes) = effect(prog, insn);
        if depth < pops as i64 {
            emit(
                rules::STACK_UNDERFLOW,
                pc,
                format!("{insn:?} needs {pops} operand(s) but only {depth} on the stack",),
                findings,
            );
            continue;
        }
        let next = depth - pops as i64 + pushes as i64;
        if next > MAX_OPERAND_STACK as i64 {
            emit(
                rules::STACK_OVERFLOW,
                pc,
                format!(
                    "operand stack grows to {next} slots, above the VM limit of {MAX_OPERAND_STACK}",
                ),
                findings,
            );
        }
        for succ in successors(insn, pc) {
            if succ < f.addr || succ >= f.end {
                let what = if matches!(
                    insn,
                    Insn::Jump(_) | Insn::JumpIfZero(_) | Insn::JumpIfNot(_)
                ) {
                    format!(
                        "jump to 0x{succ:04x} leaves the function [0x{:04x}, 0x{:04x})",
                        f.addr, f.end
                    )
                } else {
                    "execution falls through past the end of the function".to_string()
                };
                emit(rules::STACK_ESCAPE, pc, what, findings);
                continue;
            }
            match depth_in.get(&succ) {
                None => {
                    depth_in.insert(succ, next);
                    work.push(succ);
                }
                Some(&seen) if seen != next => {
                    emit(
                        rules::STACK_JOIN,
                        succ,
                        format!("paths join at 0x{succ:04x} with stack depths {seen} and {next}",),
                        findings,
                    );
                }
                Some(_) => {}
            }
        }
    }
    emitted.is_empty()
}

/// Abstract machine state at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AbsState {
    locals: Vec<Iv>,
    stack: Vec<Iv>,
}

/// Join `new` into `old`. With `widen`, any slot still moving is pushed
/// straight to the full interval so the fixpoint terminates.
fn join_into(old: &mut AbsState, new: &AbsState, widen: bool) -> bool {
    let mut changed = false;
    if old.locals.len() < new.locals.len() {
        old.locals.resize(new.locals.len(), Iv::exact(0));
        changed = true;
    }
    let mut merge = |dst: &mut Iv, src: Iv| {
        let joined = Iv::join(*dst, src);
        if joined != *dst {
            *dst = if widen { full() } else { joined };
            changed = true;
        }
    };
    for (i, v) in new.locals.iter().enumerate() {
        merge(&mut old.locals[i], *v);
    }
    for (i, v) in new.stack.iter().enumerate() {
        if i < old.stack.len() {
            merge(&mut old.stack[i], *v);
        }
    }
    changed
}

/// What one abstract step observed.
#[derive(Debug, Default)]
struct StepObs {
    /// `(address interval, is_write)` of a raw memory access.
    access: Option<(Iv, bool)>,
    /// Definitely out-of-frame computed local index: `(base, offset)`.
    idx_oob: Option<(u16, Iv)>,
}

/// Abstract transfer function; mutates `st`, returns observations.
fn transfer(prog: &Program, insn: Insn, st: &mut AbsState) -> StepObs {
    use Insn::*;
    let mut obs = StepObs::default();
    let pop = |st: &mut AbsState| st.stack.pop().unwrap_or_else(full);
    match insn {
        Enter(n) => st.locals.resize(n as usize, Iv::exact(0)),
        Const(w) => st.stack.push(Iv::exact(i64::from(w))),
        LoadLocal(n) => {
            let v = st.locals.get(n as usize).copied().unwrap_or_else(full);
            st.stack.push(v);
        }
        StoreLocal(n) => {
            let v = pop(st);
            if let Some(slot) = st.locals.get_mut(n as usize) {
                *slot = v;
            }
        }
        LoadLocalIdx(base) => {
            let off = pop(st);
            if oob_index(base, off, st.locals.len()) {
                obs.idx_oob = Some((base, off));
            }
            st.stack.push(full());
        }
        StoreLocalIdx(base) => {
            let _value = pop(st);
            let off = pop(st);
            if oob_index(base, off, st.locals.len()) {
                obs.idx_oob = Some((base, off));
            }
        }
        Dup => {
            let v = *st.stack.last().unwrap_or(&Iv::top());
            st.stack.push(v);
        }
        Drop => {
            pop(st);
        }
        Swap => {
            let n = st.stack.len();
            if n >= 2 {
                st.stack.swap(n - 1, n - 2);
            }
        }
        Add | Sub | Mul | Div | Rem | BitAnd | BitOr | BitXor | Shl | Shr | Sar | Eq | Ne | LtS
        | LeS | GtS | GeS | LtU | GeU => {
            let b = pop(st);
            let a = pop(st);
            st.stack.push(binop(insn, a, b));
        }
        Neg => {
            let a = pop(st);
            st.stack.push(Iv::sub(Iv::exact(0), a));
        }
        Not => {
            let a = pop(st);
            st.stack.push(match a.truth() {
                dfa::interval::Tri::False => Iv::exact(1),
                dfa::interval::Tri::True => Iv::exact(0),
                dfa::interval::Tri::Maybe => Iv::boolean(),
            });
        }
        BitNot => {
            let a = pop(st);
            let v = match a.as_exact() {
                Some(x) if (0..=i64::from(u32::MAX)).contains(&x) => {
                    Iv::exact(i64::from(!(x as u32)))
                }
                _ => Iv::top(),
            };
            st.stack.push(v);
        }
        Jump(_) | Nop | Halt => {}
        JumpIfZero(_) | JumpIfNot(_) => {
            pop(st);
        }
        Call { addr, argc } => {
            for _ in 0..argc {
                pop(st);
            }
            for _ in 0..ret_count(prog, addr) {
                st.stack.push(Iv::top());
            }
        }
        Ret { retc } => {
            for _ in 0..retc {
                pop(st);
            }
        }
        LoadMem => {
            let addr = pop(st);
            obs.access = Some((addr, false));
            st.stack.push(Iv::top());
        }
        StoreMem => {
            let _value = pop(st);
            let addr = pop(st);
            obs.access = Some((addr, true));
        }
        Trap { argc, retc, .. } => {
            for _ in 0..argc {
                pop(st);
            }
            for _ in 0..retc {
                st.stack.push(Iv::top());
            }
        }
    }
    obs
}

/// `true` when `base + offset` provably misses the frame of `locals` slots.
fn oob_index(base: u16, off: Iv, locals: usize) -> bool {
    let base = i64::from(base);
    base + off.lo >= locals as i64 || base + off.hi < 0
}

fn binop(insn: Insn, a: Iv, b: Iv) -> Iv {
    use Insn::*;
    match insn {
        Add => Iv::add(a, b),
        Sub => Iv::sub(a, b),
        Mul => Iv::mul(a, b),
        Div => Iv::div(a, b),
        Rem => Iv::rem(a, b),
        BitAnd => Iv::bit_op(a, b, |x, y| x & y),
        BitOr => Iv::bit_op(a, b, |x, y| x | y),
        BitXor => Iv::bit_op(a, b, |x, y| x ^ y),
        Shl => Iv::shl(a, b),
        Shr => Iv::shr(a, b),
        Sar => {
            if a.lo >= 0 {
                Iv::shr(a, b)
            } else {
                full()
            }
        }
        Eq => Iv::eq(a, b),
        Ne => match Iv::eq(a, b).as_exact() {
            Some(0) => Iv::exact(1),
            Some(_) => Iv::exact(0),
            None => Iv::boolean(),
        },
        LtS | LtU => Iv::lt(a, b),
        LeS => Iv::le(a, b),
        GtS => Iv::lt(b, a),
        GeS | GeU => Iv::le(b, a),
        _ => full(),
    }
}

/// Largest access range (in words) worth recording; wider intervals carry
/// no overlap information a human could act on.
const MAX_RANGE_WORDS: i64 = 0x1_0000;

/// Pass 2: interval fixpoint over the function, then a deterministic
/// collection sweep over the fixed states recording memory accesses and
/// definite local-index violations.
fn interpret(
    prog: &Program,
    f: &FuncMeta,
    subject: &str,
    lines: &LineTable,
    report: &mut FuncReport,
) {
    let entry = AbsState {
        locals: vec![Iv::top(); f.argc as usize],
        stack: Vec::new(),
    };
    let mut states: BTreeMap<CodeAddr, AbsState> = BTreeMap::new();
    let mut visits: BTreeMap<CodeAddr, u32> = BTreeMap::new();
    states.insert(f.addr, entry);
    let mut work = vec![f.addr];
    while let Some(pc) = work.pop() {
        let Some(insn) = prog.fetch(pc) else { continue };
        let mut st = states[&pc].clone();
        transfer(prog, insn, &mut st);
        for succ in successors(insn, pc) {
            if succ < f.addr || succ >= f.end {
                continue;
            }
            let n = visits.entry(succ).or_insert(0);
            *n += 1;
            let widen = *n > WIDEN_AFTER;
            let changed = match states.get_mut(&succ) {
                Some(old) => join_into(old, &st, widen),
                None => {
                    states.insert(succ, st.clone());
                    true
                }
            };
            if changed {
                work.push(succ);
            }
        }
    }
    // Collection sweep: one deterministic pass over the fixed states.
    for (&pc, st) in &states {
        let Some(insn) = prog.fetch(pc) else { continue };
        let mut st = st.clone();
        let obs = transfer(prog, insn, &mut st);
        if let Some((addr, write)) = obs.access {
            if addr.lo >= 0
                && addr.hi <= i64::from(u32::MAX)
                && addr.hi - addr.lo <= MAX_RANGE_WORDS
            {
                report.accesses.push(Access {
                    pc,
                    lo: addr.lo as u32,
                    hi: addr.hi as u32,
                    write,
                });
            }
        }
        if let Some((base, off)) = obs.idx_oob {
            let mut fi = Finding::new(
                rules::LOCAL_INDEX_OOB,
                Severity::Error,
                subject,
                format!(
                    "computed local index {base}+[{},{}] misses the frame's {} slot(s)",
                    off.lo,
                    off.hi.min(dfa::interval::INF),
                    st.locals.len()
                ),
            );
            if let Some(sp) = span_at(lines, pc) {
                fi = fi.with_span(sp);
            }
            report.findings.push(fi);
        }
        if let Insn::Call { addr, .. } = insn {
            if let Some(callee) = prog.func_at(addr) {
                report.calls.insert(callee.addr);
            }
        }
    }
}

/// Verify one function: depth pass, then (when clean) the interval pass.
pub fn verify_function(
    prog: &Program,
    f: &FuncMeta,
    subject: &str,
    lines: &LineTable,
) -> FuncReport {
    let mut report = FuncReport::default();
    if check_depths(prog, f, subject, lines, &mut report.findings) {
        interpret(prog, f, subject, lines, &mut report);
    } else {
        // Depth pass failed: still harvest call targets syntactically so
        // reachability (and therefore finding attribution) stays intact.
        for pc in f.addr..f.end {
            if let Some(Insn::Call { addr, .. }) = prog.fetch(pc) {
                if let Some(callee) = prog.func_at(addr) {
                    report.calls.insert(callee.addr);
                }
            }
        }
    }
    report
}

/// Function entry addresses reachable from `entry` (inclusive), following
/// the syntactic call graph.
pub fn reachable_funcs(
    calls: &BTreeMap<CodeAddr, BTreeSet<CodeAddr>>,
    entry: CodeAddr,
) -> BTreeSet<CodeAddr> {
    let mut seen = BTreeSet::new();
    let mut work = vec![entry];
    while let Some(a) = work.pop() {
        if seen.insert(a) {
            if let Some(cs) = calls.get(&a) {
                work.extend(cs.iter().copied());
            }
        }
    }
    seen
}

/// Worst-case call depth (in frames) starting at `entry`; `None` when a
/// call cycle makes the depth unbounded.
pub fn max_call_depth(
    calls: &BTreeMap<CodeAddr, BTreeSet<CodeAddr>>,
    entry: CodeAddr,
) -> Option<u64> {
    fn go(
        calls: &BTreeMap<CodeAddr, BTreeSet<CodeAddr>>,
        at: CodeAddr,
        on_stack: &mut BTreeSet<CodeAddr>,
        memo: &mut BTreeMap<CodeAddr, Option<u64>>,
    ) -> Option<u64> {
        if let Some(&m) = memo.get(&at) {
            return m;
        }
        if !on_stack.insert(at) {
            return None; // cycle
        }
        let mut deepest = 0u64;
        let mut bounded = true;
        if let Some(cs) = calls.get(&at) {
            for &c in cs {
                match go(calls, c, on_stack, memo) {
                    Some(d) => deepest = deepest.max(d),
                    None => bounded = false,
                }
            }
        }
        on_stack.remove(&at);
        let res = bounded.then_some(1 + deepest);
        memo.insert(at, res);
        res
    }
    go(calls, entry, &mut BTreeSet::new(), &mut BTreeMap::new())
}
