//! Type descriptions: the debugger's view of token and variable types.
//!
//! The PEDF toolchain deals with a small closed set of scalar types (the
//! `stddefs.h` aliases quoted in the paper's ADL listings) plus user-declared
//! record types such as `CbCrMB_t`. A [`TypeTable`] interns both and hands
//! out stable [`TypeId`]s that the compiler embeds in symbols, token
//! descriptors and connection metadata.

use std::fmt;

use crate::Word;

/// Index of a type inside a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

/// The platform's scalar types, matching the `stddefs.h` aliases used
/// throughout the paper (`U8`, `U16`, `U32`) plus a signed word for kernel
/// arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    U8,
    U16,
    U32,
    I32,
}

impl ScalarType {
    /// Number of significant bits; values are stored in full words and
    /// masked on store.
    pub fn bits(self) -> u32 {
        match self {
            ScalarType::U8 => 8,
            ScalarType::U16 => 16,
            ScalarType::U32 | ScalarType::I32 => 32,
        }
    }

    /// Mask a word down to this scalar's width (no-op for 32-bit types).
    pub fn truncate(self, w: Word) -> Word {
        match self.bits() {
            8 => w & 0xff,
            16 => w & 0xffff,
            _ => w,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            ScalarType::U8 => "U8",
            ScalarType::U16 => "U16",
            ScalarType::U32 => "U32",
            ScalarType::I32 => "I32",
        }
    }

    pub fn parse(s: &str) -> Option<ScalarType> {
        match s {
            "U8" => Some(ScalarType::U8),
            "U16" => Some(ScalarType::U16),
            "U32" => Some(ScalarType::U32),
            "I32" => Some(ScalarType::I32),
            _ => None,
        }
    }

    /// Render a raw word as this scalar, honouring signedness.
    pub fn render(self, w: Word) -> String {
        match self {
            ScalarType::I32 => format!("{}", w as i32),
            _ => format!("{}", self.truncate(w)),
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One field of a record type. Offsets are in words: the simulated machine
/// stores every field in its own 32-bit cell (padding-free layouts keep the
/// kernel compiler and the expression printer simple and deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    pub name: String,
    pub ty: TypeId,
    pub word_offset: u32,
}

/// A type definition: scalar or record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeDef {
    Scalar(ScalarType),
    /// A record ("struct") type, e.g. the case study's `CbCrMB_t`.
    Struct {
        name: String,
        fields: Vec<FieldDef>,
    },
}

impl TypeDef {
    /// Size of a value of this type, in words.
    pub fn size_words(&self) -> u32 {
        match self {
            TypeDef::Scalar(_) => 1,
            TypeDef::Struct { fields, .. } => {
                fields.iter().map(|f| f.word_offset + 1).max().unwrap_or(0)
            }
        }
    }

    pub fn name(&self) -> &str {
        match self {
            TypeDef::Scalar(s) => s.name(),
            TypeDef::Struct { name, .. } => name,
        }
    }
}

/// Interned collection of type definitions shared by the whole image.
///
/// The four scalar types are pre-interned at fixed ids so producers and the
/// debugger agree on them without a lookup.
#[derive(Debug, Clone)]
pub struct TypeTable {
    defs: Vec<TypeDef>,
}

impl Default for TypeTable {
    fn default() -> Self {
        Self::new()
    }
}

impl TypeTable {
    pub const U8: TypeId = TypeId(0);
    pub const U16: TypeId = TypeId(1);
    pub const U32: TypeId = TypeId(2);
    pub const I32: TypeId = TypeId(3);

    pub fn new() -> Self {
        TypeTable {
            defs: vec![
                TypeDef::Scalar(ScalarType::U8),
                TypeDef::Scalar(ScalarType::U16),
                TypeDef::Scalar(ScalarType::U32),
                TypeDef::Scalar(ScalarType::I32),
            ],
        }
    }

    pub fn scalar_id(s: ScalarType) -> TypeId {
        match s {
            ScalarType::U8 => Self::U8,
            ScalarType::U16 => Self::U16,
            ScalarType::U32 => Self::U32,
            ScalarType::I32 => Self::I32,
        }
    }

    /// Declare a struct type; field offsets are assigned sequentially.
    /// Returns the existing id if an identical definition was already
    /// interned (the elaborator may declare shared header types repeatedly).
    pub fn declare_struct(&mut self, name: &str, fields: &[(String, TypeId)]) -> TypeId {
        let def = TypeDef::Struct {
            name: name.to_string(),
            fields: fields
                .iter()
                .enumerate()
                .map(|(i, (fname, fty))| FieldDef {
                    name: fname.clone(),
                    ty: *fty,
                    word_offset: i as u32,
                })
                .collect(),
        };
        if let Some(pos) = self.defs.iter().position(|d| *d == def) {
            return TypeId(pos as u32);
        }
        self.defs.push(def);
        TypeId(self.defs.len() as u32 - 1)
    }

    pub fn get(&self, id: TypeId) -> &TypeDef {
        &self.defs[id.0 as usize]
    }

    pub fn lookup_by_name(&self, name: &str) -> Option<TypeId> {
        self.defs
            .iter()
            .position(|d| d.name() == name)
            .map(|i| TypeId(i as u32))
    }

    pub fn size_words(&self, id: TypeId) -> u32 {
        self.get(id).size_words()
    }

    pub fn name(&self, id: TypeId) -> &str {
        self.get(id).name()
    }

    /// Field lookup for member-access expressions (`mb.Addr`).
    pub fn field(&self, id: TypeId, field: &str) -> Option<&FieldDef> {
        match self.get(id) {
            TypeDef::Struct { fields, .. } => fields.iter().find(|f| f.name == field),
            TypeDef::Scalar(_) => None,
        }
    }

    pub fn fields(&self, id: TypeId) -> &[FieldDef] {
        match self.get(id) {
            TypeDef::Struct { fields, .. } => fields,
            TypeDef::Scalar(_) => &[],
        }
    }

    pub fn is_scalar(&self, id: TypeId) -> bool {
        matches!(self.get(id), TypeDef::Scalar(_))
    }

    pub fn as_scalar(&self, id: TypeId) -> Option<ScalarType> {
        match self.get(id) {
            TypeDef::Scalar(s) => Some(*s),
            TypeDef::Struct { .. } => None,
        }
    }

    pub fn len(&self) -> usize {
        self.defs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_masking() {
        assert_eq!(ScalarType::U8.truncate(0x1ff), 0xff);
        assert_eq!(ScalarType::U16.truncate(0x1_0005), 5);
        assert_eq!(ScalarType::U32.truncate(u32::MAX), u32::MAX);
    }

    #[test]
    fn signed_rendering() {
        assert_eq!(ScalarType::I32.render(u32::MAX), "-1");
        assert_eq!(ScalarType::U32.render(u32::MAX), "4294967295");
    }

    #[test]
    fn struct_declaration_and_lookup() {
        let mut t = TypeTable::new();
        let id = t.declare_struct(
            "CbCrMB_t",
            &[
                ("Addr".into(), TypeTable::U32),
                ("InterNotIntra".into(), TypeTable::U8),
                ("Izz".into(), TypeTable::I32),
            ],
        );
        assert_eq!(t.size_words(id), 3);
        assert_eq!(t.field(id, "Izz").unwrap().word_offset, 2);
        assert_eq!(t.lookup_by_name("CbCrMB_t"), Some(id));
        // Re-declaring identically returns the same id.
        let id2 = t.declare_struct(
            "CbCrMB_t",
            &[
                ("Addr".into(), TypeTable::U32),
                ("InterNotIntra".into(), TypeTable::U8),
                ("Izz".into(), TypeTable::I32),
            ],
        );
        assert_eq!(id, id2);
    }

    #[test]
    fn preinterned_scalars() {
        let t = TypeTable::new();
        assert_eq!(t.name(TypeTable::U16), "U16");
        assert!(t.is_scalar(TypeTable::U8));
        assert_eq!(t.as_scalar(TypeTable::I32), Some(ScalarType::I32));
    }
}
