//! The single registry of every static-analysis rule id.
//!
//! Rule ids are spread across analyzer crates (`dfa`, `bcv`, `replay`,
//! `sched`) that all sit *above* `debuginfo` in the dependency graph, so
//! the only place a complete list can live without a cycle is here. The
//! registry is the source of truth for the CLI's `analyze rules` listing
//! and the README rule tables; each analyzer crate carries a drift test
//! asserting its local `rules::ALL` table matches this registry, and a
//! top-level test asserts the README tables are byte-identical to
//! [`render_readme_table`] output. Add a rule in one place or the build
//! goes red.

/// One registered rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Stable id, e.g. `"DFA004"`.
    pub id: &'static str,
    /// Rule family — the id's alphabetic prefix.
    pub group: &'static str,
    /// One-line summary (also the README "meaning" column).
    pub summary: &'static str,
    /// Human severity note for the README table (a rule may be emitted
    /// at several severities depending on what the analyzer can prove).
    pub severity: &'static str,
}

const fn rule(
    id: &'static str,
    group: &'static str,
    summary: &'static str,
    severity: &'static str,
) -> Rule {
    Rule {
        id,
        group,
        summary,
        severity,
    }
}

/// Every rule any analyzer in the workspace can emit, in listing order
/// (family by family, ids ascending).
pub const REGISTRY: &[Rule] = &[
    // dfa — graph-level dataflow analysis.
    rule(
        "DFA001",
        "DFA",
        "port not bound to any link",
        "error / warning",
    ),
    rule("DFA002", "DFA", "link has zero FIFO capacity", "error"),
    rule(
        "DFA003",
        "DFA",
        "SDF balance equation fails on this link",
        "error",
    ),
    rule(
        "DFA004",
        "DFA",
        "dependency cycle with no token source",
        "error",
    ),
    rule(
        "DFA005",
        "DFA",
        "per-firing demand exceeds FIFO capacity",
        "error",
    ),
    rule(
        "DFA006",
        "DFA",
        "link is never fed or never drained",
        "error",
    ),
    rule(
        "DFA007",
        "DFA",
        "data-dependent rate excluded from balance analysis",
        "info",
    ),
    // dfa — kernel-level lints.
    rule(
        "DFA101",
        "DFA",
        "local read before initialization",
        "error / warning",
    ),
    rule(
        "DFA102",
        "DFA",
        "constant io index out of FIFO bounds",
        "error",
    ),
    rule("DFA103", "DFA", "statement is unreachable", "warning"),
    rule(
        "DFA104",
        "DFA",
        "declared port never accessed by the kernel",
        "warning",
    ),
    rule("KC001", "KC", "kernel fails to compile", "error"),
    // bcv — bytecode verification.
    rule("BCV201", "BCV", "operand stack underflow", "error"),
    rule(
        "BCV202",
        "BCV",
        "operand stack exceeds the VM limit",
        "error",
    ),
    rule(
        "BCV203",
        "BCV",
        "control flow escapes the function",
        "error",
    ),
    rule("BCV204", "BCV", "unbalanced stack depth at a join", "error"),
    rule(
        "BCV205",
        "BCV",
        "worst-case call depth exceeds the VM limit",
        "error / warning",
    ),
    // bcv — static memory classification.
    rule(
        "MEM301",
        "MEM",
        "access to a statically unmapped address",
        "error",
    ),
    rule("MEM302", "MEM", "access into an unbacked L1 hole", "error"),
    rule(
        "MEM303",
        "MEM",
        "L1 access targets a remote cluster",
        "warning",
    ),
    rule(
        "MEM304",
        "MEM",
        "computed local index outside the frame",
        "error",
    ),
    // bcv — shared-memory races.
    rule(
        "RACE401",
        "RACE",
        "unordered firings share memory with a write",
        "error",
    ),
    rule(
        "RACE402",
        "RACE",
        "raw access overlaps a DMA transfer window",
        "error",
    ),
    // replay — determinism checking.
    rule(
        "REPLAY501",
        "REPLAY",
        "replayed execution diverges from the recording",
        "error",
    ),
    // sched — static schedule & buffer provisioning.
    rule(
        "SCH501",
        "SCH",
        "FIFO capacity below the minimal deadlock-free size",
        "error",
    ),
    rule(
        "SCH502",
        "SCH",
        "FIFO capacity above the minimal deadlock-free size",
        "info",
    ),
    rule(
        "SCH503",
        "SCH",
        "static throughput bound for the steady state",
        "info",
    ),
    rule("SCH504", "SCH", "critical-cycle bottleneck actor", "info"),
    // sched — per-kernel WCET.
    rule(
        "WCET601",
        "WCET",
        "worst-case execution time unbounded (interval widened)",
        "warning",
    ),
    // multiverse — dynamic interleaving witnesses.
    rule(
        "MV701",
        "MV",
        "witnessed schedule deadlocks or wedges the application",
        "error",
    ),
    rule(
        "MV702",
        "MV",
        "witnessed schedule flips a racy access order and diverges output",
        "error",
    ),
    rule(
        "MV703",
        "MV",
        "no divergence witnessed within the exploration budget",
        "info",
    ),
];

/// Look up a rule by id.
pub fn find(id: &str) -> Option<&'static Rule> {
    REGISTRY.iter().find(|r| r.id == id)
}

/// All rules of one family, in registry order.
pub fn group(name: &str) -> Vec<&'static Rule> {
    REGISTRY.iter().filter(|r| r.group == name).collect()
}

/// The plain-text listing behind the CLI's `analyze rules`.
pub fn render_listing() -> String {
    let mut out = String::new();
    for r in REGISTRY {
        out.push_str(&format!("{}  {}\n", r.id, r.summary));
    }
    out
}

/// One README markdown table covering the given families, in registry
/// order. The README embeds the output verbatim; a drift test re-renders
/// and byte-compares.
pub fn render_readme_table(groups: &[&str]) -> String {
    let mut out = String::from("| rule | meaning | severity |\n|---|---|---|\n");
    for r in REGISTRY.iter().filter(|r| groups.contains(&r.group)) {
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            r.id, r.summary, r.severity
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_sorted_within_groups_and_prefix_matches_group() {
        let mut seen = std::collections::BTreeSet::new();
        for r in REGISTRY {
            assert!(seen.insert(r.id), "duplicate rule id {}", r.id);
            assert!(
                r.id.starts_with(r.group),
                "{} not prefixed by its group {}",
                r.id,
                r.group
            );
            let digits: String = r.id.chars().filter(|c| c.is_ascii_digit()).collect();
            assert!(!digits.is_empty(), "{} has no number", r.id);
        }
        // Within each group, ids ascend.
        let groups: std::collections::BTreeSet<_> = REGISTRY.iter().map(|r| r.group).collect();
        for g in groups {
            let ids: Vec<_> = group(g).into_iter().map(|r| r.id).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted, "group {g} not in id order");
        }
    }

    #[test]
    fn lookup_and_rendering_work() {
        assert_eq!(find("DFA004").unwrap().group, "DFA");
        assert!(find("NOPE999").is_none());
        let listing = render_listing();
        assert!(listing.contains("SCH501  FIFO capacity below"));
        let table = render_readme_table(&["SCH", "WCET"]);
        assert!(table.starts_with("| rule | meaning | severity |"));
        assert!(table.contains("`WCET601`"));
        assert!(!table.contains("`DFA001`"));
    }
}
