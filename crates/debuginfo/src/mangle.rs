//! The platform toolchain's name-mangling scheme.
//!
//! §VI-F quotes the mangled names a developer faces without a
//! dataflow-aware debugger: filter `ipf`'s WORK method is linked as
//! `IpfFilter_work_function`, while the controller of module `pred` becomes
//! `_component_PredModule_anon_0_work`. We reproduce exactly these shapes so
//! the qualitative-analysis experiment can show the same mangled/pretty
//! mismatch, and provide the inverse mapping the debugger uses to present
//! pretty names.

/// Capitalize the first letter of each `_`-separated chunk and join:
/// `pred_controller` → `PredController`, `ipf` → `Ipf`.
fn camel(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for chunk in name.split('_') {
        let mut chars = chunk.chars();
        if let Some(c) = chars.next() {
            out.extend(c.to_uppercase());
            out.push_str(chars.as_str());
        }
    }
    out
}

/// Mangled name of a filter's WORK method: `IpfFilter_work_function`.
pub fn filter_work(filter: &str) -> String {
    format!("{}Filter_work_function", camel(filter))
}

/// Mangled name of a module controller's WORK method:
/// `_component_PredModule_anon_0_work`.
pub fn controller_work(module: &str) -> String {
    format!("_component_{}Module_anon_0_work", camel(module))
}

/// Mangled name of a PEDF runtime API function: `pedf_push_token`.
pub fn runtime_api(function: &str) -> String {
    format!("pedf_{function}")
}

/// Mangled name of a helper function inside a filter's kernel source:
/// `IpfFilter_fn_clip`.
pub fn filter_helper(filter: &str, function: &str) -> String {
    format!("{}Filter_fn_{function}", camel(filter))
}

/// Mangled name of a helper function inside a controller's source:
/// `_component_PredModule_fn_pick`.
pub fn controller_helper(module: &str, function: &str) -> String {
    format!("_component_{}Module_fn_{function}", camel(module))
}

/// Mangled name of a filter's private-data or attribute object:
/// `IpfFilter_data_a_private_data`.
pub fn filter_object(filter: &str, category: &str, name: &str) -> String {
    format!("{}Filter_{category}_{name}", camel(filter))
}

/// Result of demangling a linker name back into toolchain concepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Demangled {
    /// `<filter>::work`
    FilterWork { filter: String },
    /// `<module>_controller::work`
    ControllerWork { module: String },
    /// `pedf::<function>`
    RuntimeApi { function: String },
    /// Anything we do not recognise is passed through untouched, as GDB
    /// does for foreign mangling schemes.
    Opaque(String),
}

/// Lower a CamelCase chunk back to snake_case (`PredController` →
/// `pred_controller`). Inverse of [`camel`] for names produced by it.
fn snake(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Demangle a linker-level name.
pub fn demangle(mangled: &str) -> Demangled {
    if let Some(rest) = mangled.strip_prefix("_component_") {
        if let Some(module) = rest.strip_suffix("Module_anon_0_work") {
            return Demangled::ControllerWork {
                module: snake(module),
            };
        }
    }
    if let Some(rest) = mangled.strip_suffix("Filter_work_function") {
        return Demangled::FilterWork {
            filter: snake(rest),
        };
    }
    if let Some(rest) = mangled.strip_prefix("pedf_") {
        return Demangled::RuntimeApi {
            function: rest.to_string(),
        };
    }
    Demangled::Opaque(mangled.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_names() {
        // Both examples come verbatim from §VI-F.
        assert_eq!(filter_work("ipf"), "IpfFilter_work_function");
        assert_eq!(controller_work("pred"), "_component_PredModule_anon_0_work");
    }

    #[test]
    fn roundtrip_filter() {
        for name in ["ipf", "ipred", "hwcfg", "a_filter"] {
            match demangle(&filter_work(name)) {
                Demangled::FilterWork { filter } => assert_eq!(filter, name),
                other => panic!("bad demangle: {other:?}"),
            }
        }
    }

    #[test]
    fn roundtrip_controller() {
        for name in ["pred", "front", "a_module"] {
            match demangle(&controller_work(name)) {
                Demangled::ControllerWork { module } => {
                    assert_eq!(module, name)
                }
                other => panic!("bad demangle: {other:?}"),
            }
        }
    }

    #[test]
    fn runtime_api_roundtrip() {
        assert_eq!(runtime_api("push_token"), "pedf_push_token");
        assert_eq!(
            demangle("pedf_push_token"),
            Demangled::RuntimeApi {
                function: "push_token".into()
            }
        );
    }

    #[test]
    fn unknown_names_pass_through() {
        assert_eq!(
            demangle("_ZN3foo3barE"),
            Demangled::Opaque("_ZN3foo3barE".into())
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// snake_case identifiers as the tool-chain produces them.
    fn snake_ident() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9]{0,6}(_[a-z][a-z0-9]{0,6}){0,3}"
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Mangling then demangling recovers the original names for every
        /// well-formed snake_case filter/module identifier.
        #[test]
        fn filter_mangling_roundtrips(name in snake_ident()) {
            prop_assert_eq!(
                demangle(&filter_work(&name)),
                Demangled::FilterWork { filter: name.clone() }
            );
            prop_assert_eq!(
                demangle(&controller_work(&name)),
                Demangled::ControllerWork { module: name }
            );
        }

        /// Distinct names never collide after mangling.
        #[test]
        fn mangling_is_injective(a in snake_ident(), b in snake_ident()) {
            prop_assume!(a != b);
            prop_assert_ne!(filter_work(&a), filter_work(&b));
            prop_assert_ne!(controller_work(&a), controller_work(&b));
        }
    }
}
