//! Symbol tables: the link between machine addresses and names.
//!
//! Function breakpoints (§V) are planted on the *entry* address of the PEDF
//! API functions and decode their arguments from parameter descriptors, so a
//! symbol here carries more than a name/address pair: it also records its
//! formal parameters (name + type) and its code extent, which `finish`
//! breakpoints and the frame printer need.

use std::collections::HashMap;

use crate::types::TypeId;
use crate::CodeAddr;

/// Index of a symbol inside a [`SymbolTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymbolId(pub u32);

/// What a symbol names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolKind {
    /// Executable code: kernel `WORK` methods, controller programs, PEDF
    /// runtime stubs.
    Function,
    /// A data object in simulated memory (filter private data, attributes).
    Object,
}

/// A formal parameter of a function symbol, in calling-convention order.
/// The simulated calling convention passes arguments in the first stack
/// slots of the callee frame, so `slot` is both the declaration index and
/// the frame offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamInfo {
    pub name: String,
    pub ty: TypeId,
    pub slot: u32,
}

/// One symbol table entry.
#[derive(Debug, Clone)]
pub struct Symbol {
    pub id: SymbolId,
    /// Mangled (linker-level) name, e.g. `IpfFilter_work_function`.
    pub mangled: String,
    /// Human-readable name, e.g. `ipf::work`.
    pub pretty: String,
    pub kind: SymbolKind,
    pub addr: CodeAddr,
    /// Code extent in instructions (functions) or words (objects).
    pub size: u32,
    pub params: Vec<ParamInfo>,
}

impl Symbol {
    pub fn covers(&self, addr: CodeAddr) -> bool {
        addr >= self.addr && addr < self.addr + self.size
    }
}

/// The image's symbol table. Lookups by mangled name, pretty name and
/// address are all required by the debugger, so all three indexes are kept.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    symbols: Vec<Symbol>,
    by_mangled: HashMap<String, SymbolId>,
    by_pretty: HashMap<String, SymbolId>,
}

impl SymbolTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a symbol. Returns `None` (and registers nothing) if another
    /// symbol already claims the mangled name — duplicate link-level names
    /// would make breakpoint placement ambiguous.
    pub fn add(
        &mut self,
        mangled: &str,
        pretty: &str,
        kind: SymbolKind,
        addr: CodeAddr,
        size: u32,
        params: Vec<ParamInfo>,
    ) -> Option<SymbolId> {
        if self.by_mangled.contains_key(mangled) {
            return None;
        }
        let id = SymbolId(self.symbols.len() as u32);
        self.symbols.push(Symbol {
            id,
            mangled: mangled.to_string(),
            pretty: pretty.to_string(),
            kind,
            addr,
            size,
            params,
        });
        self.by_mangled.insert(mangled.to_string(), id);
        self.by_pretty.insert(pretty.to_string(), id);
        Some(id)
    }

    pub fn get(&self, id: SymbolId) -> &Symbol {
        &self.symbols[id.0 as usize]
    }

    /// Resolve a name the way GDB does: try the source-level (pretty) name
    /// first, then the mangled one.
    pub fn resolve(&self, name: &str) -> Option<&Symbol> {
        self.by_pretty
            .get(name)
            .or_else(|| self.by_mangled.get(name))
            .map(|id| self.get(*id))
    }

    pub fn by_mangled(&self, name: &str) -> Option<&Symbol> {
        self.by_mangled.get(name).map(|id| self.get(*id))
    }

    /// The function whose extent covers `addr`, if any. Linear scan is fine:
    /// tables are small and this is only on the slow (stopped) path.
    pub fn function_covering(&self, addr: CodeAddr) -> Option<&Symbol> {
        self.symbols
            .iter()
            .filter(|s| s.kind == SymbolKind::Function)
            .find(|s| s.covers(addr))
    }

    pub fn iter(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols.iter()
    }

    /// All function symbols whose pretty or mangled name starts with
    /// `prefix` — the workhorse of the CLI's autocompletion.
    pub fn complete(&self, prefix: &str) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .symbols
            .iter()
            .flat_map(|s| [s.pretty.as_str(), s.mangled.as_str()])
            .filter(|n| n.starts_with(prefix))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeTable;

    fn sample() -> SymbolTable {
        let mut t = SymbolTable::new();
        t.add(
            "IpfFilter_work_function",
            "ipf::work",
            SymbolKind::Function,
            100,
            40,
            vec![],
        )
        .unwrap();
        t.add(
            "pedf_push_token",
            "pedf::push_token",
            SymbolKind::Function,
            10,
            4,
            vec![
                ParamInfo {
                    name: "conn".into(),
                    ty: TypeTable::U32,
                    slot: 0,
                },
                ParamInfo {
                    name: "index".into(),
                    ty: TypeTable::U32,
                    slot: 1,
                },
            ],
        )
        .unwrap();
        t
    }

    #[test]
    fn resolve_both_names() {
        let t = sample();
        assert_eq!(t.resolve("ipf::work").unwrap().addr, 100);
        assert_eq!(t.resolve("IpfFilter_work_function").unwrap().addr, 100);
        assert!(t.resolve("missing").is_none());
    }

    #[test]
    fn duplicate_mangled_names_rejected() {
        let mut t = sample();
        assert!(t
            .add(
                "pedf_push_token",
                "other",
                SymbolKind::Function,
                50,
                1,
                vec![]
            )
            .is_none());
    }

    #[test]
    fn covering_lookup() {
        let t = sample();
        assert_eq!(t.function_covering(120).unwrap().pretty, "ipf::work");
        assert_eq!(t.function_covering(139).unwrap().pretty, "ipf::work");
        assert!(t.function_covering(140).is_none());
    }

    #[test]
    fn completion_is_sorted_and_deduped() {
        let t = sample();
        let c = t.complete("pedf");
        assert_eq!(c, vec!["pedf::push_token", "pedf_push_token"]);
    }
}
