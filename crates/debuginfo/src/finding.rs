//! Shared diagnostic format for static findings.
//!
//! Both the kernel compiler (`kernelc`) and the static dataflow analyzer
//! (`dfa`) report problems as [`Finding`]s: a stable rule id, a severity,
//! the subject (an actor, port, link or variable) and an optional source
//! [`Span`]. Spans resolve against the [`crate::LineTable`] to the code
//! address of the spanned statement, so a finding can be turned into a
//! breakpoint location directly — the point of doing the analysis inside
//! a debugger.

use std::fmt;

use crate::lines::LineTable;
use crate::CodeAddr;

/// How bad a finding is. Ordered: `Info < Warning < Error`, so
/// `--deny warnings` is `severity >= Severity::Warning`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A source location: file, 1-based line, 1-based column (0 = unknown),
/// and — once [`Span::resolve`] ran against a line table — the code
/// address of the statement covering the location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub addr: Option<CodeAddr>,
}

impl Span {
    pub fn new(file: impl Into<String>, line: u32, col: u32) -> Self {
        Span {
            file: file.into(),
            line,
            col,
            addr: None,
        }
    }

    /// Attach the code address of the spanned statement, if the line table
    /// knows the file and has an `is_stmt` row at (or after) the line.
    pub fn resolve(&mut self, lines: &LineTable) {
        if self.addr.is_none() {
            if let Some(file) = lines.file_by_name(&self.file) {
                self.addr = lines.addr_of_line(file, self.line);
            }
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)?;
        if self.col > 0 {
            write!(f, ":{}", self.col)?;
        }
        if let Some(addr) = self.addr {
            write!(f, " @0x{addr:04x}")?;
        }
        Ok(())
    }
}

/// One diagnostic: rule id (`DFA001`, `KC001`, ...), severity, subject
/// (what the finding is about: `pred.ipred::Red_in`, a link label, a
/// variable) and a human message, optionally anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub severity: Severity,
    pub subject: String,
    pub message: String,
    pub span: Option<Span>,
    /// Replayable dynamic witness (`mv1:...` choice-trace string) when a
    /// multiverse exploration confirmed the finding with a concrete
    /// interleaving. Static analyzers leave it `None`; the JSON renderer
    /// omits the field entirely in that case.
    pub witness: Option<String>,
}

impl Finding {
    pub fn new(
        rule: &'static str,
        severity: Severity,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        // Every rule id must be registered: the registry drives `analyze
        // rules`, the README tables and the fuzz farm's oracle mapping,
        // so an unregistered id is a bug in whichever analyzer minted it.
        // Checked at construction (debug builds) so no grep-based audit
        // is needed to keep the registry exhaustive.
        debug_assert!(
            crate::registry::find(rule).is_some(),
            "finding uses unregistered rule id {rule:?} — add it to debuginfo::registry"
        );
        Finding {
            rule,
            severity,
            subject: subject.into(),
            message: message.into(),
            span: None,
            witness: None,
        }
    }

    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    pub fn with_witness(mut self, witness: impl Into<String>) -> Self {
        self.witness = Some(witness.into());
        self
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.rule, self.subject, self.message
        )?;
        if let Some(span) = &self.span {
            write!(f, " ({span})")?;
        }
        Ok(())
    }
}

/// Canonical deterministic ordering for every analysis pass: most severe
/// first, then (rule, subject, file, line, col, address, message). Exact
/// duplicates are removed, so repeated runs render byte-identical output.
pub fn sort_and_dedup_findings(findings: &mut Vec<Finding>) {
    fn key(
        f: &Finding,
    ) -> (
        std::cmp::Reverse<Severity>,
        &str,
        &str,
        &str,
        u32,
        u32,
        u64,
        &str,
    ) {
        let (file, line, col, addr) = match &f.span {
            Some(s) => (
                s.file.as_str(),
                s.line,
                s.col,
                s.addr.map_or(u64::MAX, u64::from),
            ),
            None => ("", 0, 0, u64::MAX),
        };
        (
            std::cmp::Reverse(f.severity),
            f.rule,
            f.subject.as_str(),
            file,
            line,
            col,
            addr,
            f.message.as_str(),
        )
    }
    findings.sort_by(|a, b| key(a).cmp(&key(b)));
    findings.dedup();
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Version of the JSON report layout produced by [`render_findings_json`].
/// Bump it whenever a field is added, removed, renamed, or re-ordered so
/// downstream consumers can gate on the shape they were written against.
/// v2: optional `witness` field (replayable multiverse choice trace),
/// present only on dynamically witnessed findings.
pub const FINDINGS_SCHEMA_VERSION: u32 = 2;

/// Render findings as machine-readable JSON with stable field names,
/// sorted by rule id then resolved code address (then the remaining span
/// coordinates), so CI runs diff byte-for-byte. The top-level
/// `schema_version` field ([`FINDINGS_SCHEMA_VERSION`]) identifies the
/// layout.
pub fn render_findings_json(findings: &[Finding]) -> String {
    use std::fmt::Write as _;
    let mut fs: Vec<&Finding> = findings.iter().collect();
    fs.sort_by_key(|f| {
        let (file, line, col, addr) = match &f.span {
            Some(s) => (
                s.file.clone(),
                s.line,
                s.col,
                s.addr.map_or(u64::MAX, u64::from),
            ),
            None => (String::new(), 0, 0, u64::MAX),
        };
        (f.rule, addr, file, line, col, f.subject.clone())
    });
    let mut out =
        format!("{{\n  \"schema_version\": {FINDINGS_SCHEMA_VERSION},\n  \"findings\": [");
    for (i, f) in fs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        let _ = write!(
            out,
            "{{\"rule\": \"{}\", \"severity\": \"{}\", \"subject\": \"{}\", \"message\": \"{}\"",
            json_escape(f.rule),
            f.severity.label(),
            json_escape(&f.subject),
            json_escape(&f.message),
        );
        if let Some(w) = &f.witness {
            let _ = write!(out, ", \"witness\": \"{}\"", json_escape(w));
        }
        match &f.span {
            Some(s) => {
                let _ = write!(
                    out,
                    ", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"addr\": ",
                    json_escape(&s.file),
                    s.line,
                    s.col
                );
                match s.addr {
                    Some(a) => {
                        let _ = write!(out, "{a}");
                    }
                    None => out.push_str("null"),
                }
            }
            None => {
                out.push_str(", \"file\": null, \"line\": null, \"col\": null, \"addr\": null");
            }
        }
        out.push('}');
    }
    if !fs.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Render findings as an aligned table with a severity tally footer.
pub fn render_findings(findings: &[Finding]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if findings.is_empty() {
        out.push_str("no findings\n");
        return out;
    }
    let loc = |f: &Finding| f.span.as_ref().map_or(String::from("-"), Span::to_string);
    let w_rule = findings
        .iter()
        .map(|f| f.rule.len())
        .max()
        .unwrap_or(4)
        .max("RULE".len());
    let w_sev = findings
        .iter()
        .map(|f| f.severity.label().len())
        .max()
        .unwrap_or(5)
        .max("SEV".len());
    let w_loc = findings
        .iter()
        .map(|f| loc(f).len())
        .max()
        .unwrap_or(1)
        .max("LOCATION".len());
    let w_subj = findings
        .iter()
        .map(|f| f.subject.len())
        .max()
        .unwrap_or(7)
        .max("SUBJECT".len());
    let _ = writeln!(
        out,
        "{:<w_rule$}  {:<w_sev$}  {:<w_loc$}  {:<w_subj$}  MESSAGE",
        "RULE", "SEV", "LOCATION", "SUBJECT"
    );
    for f in findings {
        let _ = writeln!(
            out,
            "{:<w_rule$}  {:<w_sev$}  {:<w_loc$}  {:<w_subj$}  {}",
            f.rule,
            f.severity.label(),
            loc(f),
            f.subject,
            f.message
        );
    }
    let count = |s: Severity| findings.iter().filter(|f| f.severity == s).count();
    let _ = writeln!(
        out,
        "{} error(s), {} warning(s), {} info",
        count(Severity::Error),
        count(Severity::Warning),
        count(Severity::Info)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DebugInfoBuilder, LineEntry};

    #[test]
    fn severity_orders_for_deny() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn span_resolves_through_the_line_table() {
        let mut b = DebugInfoBuilder::new();
        let f = b.lines_mut().add_file("ipred.c", "a;\nb;\n");
        b.lines_mut().add_entry(LineEntry {
            addr: 0x40,
            file: f,
            line: 2,
            is_stmt: true,
        });
        let info = b.finish();
        let mut span = Span::new("ipred.c", 2, 13);
        span.resolve(&info.lines);
        assert_eq!(span.addr, Some(0x40));
        assert_eq!(span.to_string(), "ipred.c:2:13 @0x0040");
        // Unknown file: resolution is a no-op, display has no address.
        let mut other = Span::new("nope.c", 1, 0);
        other.resolve(&info.lines);
        assert_eq!(other.addr, None);
        assert_eq!(other.to_string(), "nope.c:1");
    }

    #[test]
    fn table_renders_and_tallies() {
        let fs = vec![
            Finding::new("DFA003", Severity::Error, "red -> ipred", "rate mismatch")
                .with_span(Span::new("ipred.c", 10, 0)),
            Finding::new(
                "DFA104",
                Severity::Warning,
                "mc::spare_in",
                "port never used",
            ),
        ];
        let t = render_findings(&fs);
        assert!(t.contains("DFA003"));
        assert!(t.contains("ipred.c:10"));
        assert!(t.contains("1 error(s), 1 warning(s), 0 info"));
        assert_eq!(render_findings(&[]), "no findings\n");
    }
}
