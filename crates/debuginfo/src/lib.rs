//! DWARF-like debug information for the P2012 toolchain.
//!
//! The paper's debugger relies *only* on "standard DWARF debug structures"
//! (§V) to locate framework functions, parse their arguments and map machine
//! addresses back to source lines. This crate models the subset of DWARF that
//! the debugger actually consumes:
//!
//! * a **type table** ([`types::TypeTable`]) describing scalar token types
//!   (`U8`, `U16`, `U32`, `I32`) and record types such as the case study's
//!   `CbCrMB_t`;
//! * a **symbol table** ([`symbols::SymbolTable`]) mapping mangled function
//!   and object names to code/data addresses, including formal-parameter
//!   descriptors used by *function breakpoints* to decode call arguments;
//! * a **line table** ([`lines::LineTable`]) mapping code addresses to
//!   `file:line` pairs (and back) for source-level breakpoints, stepping and
//!   the `list` command;
//! * the platform's **name mangling** scheme ([`mangle`]), reproducing the
//!   shapes quoted in §VI-F (`IpfFilter_work_function`,
//!   `_component_PredModule_anon_0_work`).
//!
//! All tables are immutable once built; producers (the kernel compiler and
//! the ADL elaborator) assemble them through [`DebugInfoBuilder`].

pub mod finding;
pub mod lines;
pub mod mangle;
pub mod registry;
pub mod symbols;
pub mod types;
pub mod value;

pub use finding::{
    render_findings, render_findings_json, sort_and_dedup_findings, Finding, Severity, Span,
    FINDINGS_SCHEMA_VERSION,
};
pub use lines::{FileId, LineEntry, LineTable, SourceFile};
pub use symbols::{ParamInfo, Symbol, SymbolId, SymbolKind, SymbolTable};
pub use types::{ScalarType, TypeDef, TypeId, TypeTable};
pub use value::Value;

/// Machine word of the simulated platform. All registers, stack slots and
/// token payload cells are 32-bit words; narrower scalar types are stored
/// zero-extended and masked on store.
pub type Word = u32;

/// Code address inside a program image (an index into its instruction
/// stream). Kept distinct from data addresses, which live in the simulated
/// memory hierarchy.
pub type CodeAddr = u32;

/// Aggregated debug information for one compiled program image.
///
/// One `DebugInfo` instance describes everything loaded onto the platform:
/// application kernels, controller programs and the PEDF runtime stubs share
/// a single address space per image, exactly as the paper's monolithic
/// simulator binary does.
#[derive(Debug, Clone, Default)]
pub struct DebugInfo {
    pub types: TypeTable,
    pub symbols: SymbolTable,
    pub lines: LineTable,
}

impl DebugInfo {
    /// Look up the function symbol covering `addr`, if any.
    pub fn function_at(&self, addr: CodeAddr) -> Option<&Symbol> {
        self.symbols.function_covering(addr)
    }

    /// Render a source location for `addr` as `file:line`, falling back to a
    /// bare hex address when no line information exists (e.g. runtime stubs).
    pub fn describe_addr(&self, addr: CodeAddr) -> String {
        match self.lines.lookup(addr) {
            Some(entry) => {
                let file = self.lines.file_name(entry.file);
                format!("{file}:{line}", line = entry.line)
            }
            None => format!("0x{addr:04x}"),
        }
    }
}

/// Incremental builder used by the compiler and elaborator.
///
/// The builder keeps the invariants the debugger relies on: symbols are
/// non-overlapping per kind, and the line table is sorted by address.
#[derive(Debug, Default)]
pub struct DebugInfoBuilder {
    info: DebugInfo,
}

impl DebugInfoBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn types_mut(&mut self) -> &mut TypeTable {
        &mut self.info.types
    }

    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.info.symbols
    }

    pub fn lines_mut(&mut self) -> &mut LineTable {
        &mut self.info.lines
    }

    /// Finish construction, sorting the line table and freezing the result.
    pub fn finish(mut self) -> DebugInfo {
        self.info.lines.seal();
        self.info
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_addr_prefers_line_info() {
        let mut b = DebugInfoBuilder::new();
        let f = b.lines_mut().add_file("the_source.c", "int x;\n");
        b.lines_mut().add_entry(LineEntry {
            addr: 10,
            file: f,
            line: 1,
            is_stmt: true,
        });
        let info = b.finish();
        assert_eq!(info.describe_addr(10), "the_source.c:1");
        assert_eq!(info.describe_addr(9), "0x0009");
    }
}
