//! Line tables: the address ↔ source-line mapping.
//!
//! Source-level breakpoints (`break the_source.c:221`), the `list` command
//! and source-stepping (`step`/`next`) all go through this table. Unlike
//! real DWARF we also keep the *source text* itself: the paper's workflow
//! (`(gdb) list` before `step_both`, §VI-C) needs the debugger to show
//! kernel source, and our kernels only exist in memory.

use std::fmt;

use crate::CodeAddr;

/// Index of a source file inside a [`LineTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId(pub u32);

/// A registered source file with its full text, split into lines once at
/// registration so `list` is allocation-free afterwards.
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub name: String,
    lines: Vec<String>,
}

impl SourceFile {
    /// 1-based line access, like every debugger interface.
    pub fn line(&self, n: u32) -> Option<&str> {
        if n == 0 {
            return None;
        }
        self.lines.get(n as usize - 1).map(String::as_str)
    }

    pub fn line_count(&self) -> u32 {
        self.lines.len() as u32
    }
}

/// One row of the line program: `addr` is the first instruction generated
/// for source line `line` of `file`. `is_stmt` marks recommended breakpoint
/// locations (statement starts), as in DWARF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineEntry {
    pub addr: CodeAddr,
    pub file: FileId,
    pub line: u32,
    pub is_stmt: bool,
}

impl fmt::Display for LineEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:04x} -> line {}", self.addr, self.line)
    }
}

/// The image-wide line table. Built unsorted by the compiler, then sealed
/// (sorted by address) before the debugger uses it.
#[derive(Debug, Clone, Default)]
pub struct LineTable {
    files: Vec<SourceFile>,
    entries: Vec<LineEntry>,
    sealed: bool,
}

impl LineTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a source file with its text. Re-registering the same name
    /// returns the original id (headers are included by several kernels).
    pub fn add_file(&mut self, name: &str, text: &str) -> FileId {
        if let Some(pos) = self.files.iter().position(|f| f.name == name) {
            return FileId(pos as u32);
        }
        self.files.push(SourceFile {
            name: name.to_string(),
            lines: text.lines().map(str::to_string).collect(),
        });
        FileId(self.files.len() as u32 - 1)
    }

    pub fn add_entry(&mut self, e: LineEntry) {
        debug_assert!(!self.sealed, "line table already sealed");
        self.entries.push(e);
    }

    /// Sort by address; called once by [`crate::DebugInfoBuilder::finish`].
    pub fn seal(&mut self) {
        self.entries.sort_by_key(|e| e.addr);
        self.sealed = true;
    }

    /// The line entry in effect at `addr`: the greatest entry with
    /// `entry.addr <= addr` belonging to the same run of addresses.
    pub fn lookup(&self, addr: CodeAddr) -> Option<LineEntry> {
        match self.entries.binary_search_by_key(&addr, |e| e.addr) {
            Ok(i) => Some(self.entries[i]),
            Err(0) => None,
            Err(i) => Some(self.entries[i - 1]),
        }
    }

    /// First address generated for `file:line`, used by line breakpoints.
    /// When the exact line has no code (blank/comment), the next line with
    /// code in the same file is used, like GDB's sliding behaviour.
    pub fn addr_of_line(&self, file: FileId, line: u32) -> Option<CodeAddr> {
        self.entries
            .iter()
            .filter(|e| e.file == file && e.line >= line && e.is_stmt)
            .min_by_key(|e| (e.line, e.addr))
            .map(|e| e.addr)
    }

    pub fn file_by_name(&self, name: &str) -> Option<FileId> {
        self.files
            .iter()
            .position(|f| f.name == name)
            .map(|i| FileId(i as u32))
    }

    pub fn file_name(&self, id: FileId) -> &str {
        &self.files[id.0 as usize].name
    }

    pub fn file(&self, id: FileId) -> &SourceFile {
        &self.files[id.0 as usize]
    }

    pub fn files(&self) -> impl Iterator<Item = (FileId, &SourceFile)> {
        self.files
            .iter()
            .enumerate()
            .map(|(i, f)| (FileId(i as u32), f))
    }

    pub fn entries(&self) -> &[LineEntry] {
        &self.entries
    }

    /// Merge another table into this one, rebasing code addresses by
    /// `addr_base`. Used by the ADL elaborator when linking several compiled
    /// kernels into one image.
    pub fn absorb(&mut self, other: &LineTable, addr_base: CodeAddr) {
        debug_assert!(!self.sealed, "cannot absorb into a sealed table");
        let mut file_map = Vec::with_capacity(other.files.len());
        for f in &other.files {
            let joined = f.lines.join("\n");
            file_map.push(self.add_file(&f.name, &joined));
        }
        for e in &other.entries {
            self.entries.push(LineEntry {
                addr: e.addr + addr_base,
                file: file_map[e.file.0 as usize],
                line: e.line,
                is_stmt: e.is_stmt,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (LineTable, FileId) {
        let mut t = LineTable::new();
        let f = t.add_file("k.c", "a;\n\nb;\nc;\n");
        for (addr, line) in [(0u32, 1u32), (4, 3), (9, 4)] {
            t.add_entry(LineEntry {
                addr,
                file: f,
                line,
                is_stmt: true,
            });
        }
        t.seal();
        (t, f)
    }

    #[test]
    fn lookup_finds_covering_entry() {
        let (t, _) = table();
        assert_eq!(t.lookup(0).unwrap().line, 1);
        assert_eq!(t.lookup(3).unwrap().line, 1);
        assert_eq!(t.lookup(4).unwrap().line, 3);
        assert_eq!(t.lookup(100).unwrap().line, 4);
    }

    #[test]
    fn line_breakpoints_slide_to_next_code_line() {
        let (t, f) = table();
        assert_eq!(t.addr_of_line(f, 1), Some(0));
        // line 2 has no code: slide to line 3.
        assert_eq!(t.addr_of_line(f, 2), Some(4));
        assert_eq!(t.addr_of_line(f, 99), None);
    }

    #[test]
    fn source_text_available_for_list() {
        let (t, f) = table();
        assert_eq!(t.file(f).line(3), Some("b;"));
        assert_eq!(t.file(f).line(0), None);
        assert_eq!(t.file(f).line_count(), 4);
    }

    #[test]
    fn absorb_rebases_addresses_and_merges_files() {
        let (t1, _) = table();
        let mut base = LineTable::new();
        base.absorb(&t1, 100);
        base.seal();
        assert_eq!(base.lookup(104).unwrap().line, 3);
        assert!(base.file_by_name("k.c").is_some());
    }

    #[test]
    fn duplicate_file_registration_is_idempotent() {
        let mut t = LineTable::new();
        let a = t.add_file("h.h", "x\n");
        let b = t.add_file("h.h", "ignored\n");
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// For any monotone set of entries, `lookup` returns the greatest
        /// entry at or below the queried address, and `addr_of_line` only
        /// returns statement starts at or after the requested line.
        #[test]
        fn lookup_and_line_breakpoint_invariants(
            mut addrs in prop::collection::btree_set(0u32..1000, 1..40),
            query in 0u32..1100,
            line_query in 1u32..50,
        ) {
            let mut t = LineTable::new();
            let f = t.add_file("x.c", &"code;\n".repeat(50));
            let sorted: Vec<u32> = std::mem::take(&mut addrs).into_iter().collect();
            for (i, addr) in sorted.iter().enumerate() {
                t.add_entry(LineEntry {
                    addr: *addr,
                    file: f,
                    line: i as u32 + 1,
                    is_stmt: true,
                });
            }
            t.seal();

            match t.lookup(query) {
                Some(e) => {
                    prop_assert!(e.addr <= query);
                    // No entry lies strictly between e.addr and query.
                    prop_assert!(!sorted
                        .iter()
                        .any(|a| *a > e.addr && *a <= query));
                }
                None => prop_assert!(sorted.iter().all(|a| *a > query)),
            }

            match t.addr_of_line(f, line_query) {
                Some(addr) => {
                    let e = t.lookup(addr).unwrap();
                    prop_assert!(e.line >= line_query);
                    prop_assert_eq!(e.addr, addr);
                }
                None => {
                    // Only possible when every entry is below the line.
                    prop_assert!(sorted.len() < line_query as usize);
                }
            }
        }
    }
}
