//! Typed runtime values, as exchanged over data links and printed by the
//! debugger.
//!
//! A [`Value`] couples raw payload words with a [`TypeId`]; rendering is the
//! debugger's job (`print`, `iface ... print`, `filter print last_token`),
//! which is why formatting helpers live here next to the type table instead
//! of being scattered across the CLI.

use std::fmt;

use crate::types::{TypeDef, TypeId, TypeTable};
use crate::Word;

/// A typed value: one or more payload words plus the type used to interpret
/// them. Scalar values hold exactly one word; record values hold one word
/// per field, in field order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Value {
    pub ty: TypeId,
    pub words: Vec<Word>,
}

impl Value {
    pub fn scalar(ty: TypeId, w: Word) -> Value {
        Value { ty, words: vec![w] }
    }

    /// Convenience for unsigned 32-bit values, the lingua franca of the
    /// paper's examples.
    pub fn u32(w: Word) -> Value {
        Value::scalar(TypeTable::U32, w)
    }

    pub fn record(ty: TypeId, words: Vec<Word>) -> Value {
        Value { ty, words }
    }

    /// First payload word — the whole value for scalars, the first field
    /// for records. Used by conditional catchpoints comparing token content.
    pub fn head_word(&self) -> Word {
        self.words.first().copied().unwrap_or(0)
    }

    /// Read the field named `field`, if this is a record with such a field.
    pub fn field(&self, types: &TypeTable, field: &str) -> Option<Word> {
        let f = types.field(self.ty, field)?;
        self.words.get(f.word_offset as usize).copied()
    }

    /// Compact rendering used in token listings: `(U16) 5` or
    /// `(CbCrMB_t) {Addr=0x145D, ...}` — the shapes the paper's transcripts
    /// show in §VI-D.
    pub fn render_short(&self, types: &TypeTable) -> String {
        match types.get(self.ty) {
            TypeDef::Scalar(s) => {
                format!("({}) {}", s.name(), s.render(self.head_word()))
            }
            TypeDef::Struct { name, fields } => {
                let head = fields
                    .first()
                    .map(|f| {
                        format!(
                            "{}=0x{:X}",
                            f.name,
                            self.words.get(f.word_offset as usize).copied().unwrap_or(0)
                        )
                    })
                    .unwrap_or_default();
                format!("({name}) {{{head},...}}")
            }
        }
    }

    /// Full rendering used by the low-level `print` command: every field on
    /// its own `name = value` entry, mirroring GDB's struct printer (§VI-E).
    pub fn render_full(&self, types: &TypeTable) -> String {
        match types.get(self.ty) {
            TypeDef::Scalar(s) => s.render(self.head_word()),
            TypeDef::Struct { fields, .. } => {
                let mut out = String::from("{ ");
                for (i, f) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n  ");
                    }
                    let w = self.words.get(f.word_offset as usize).copied().unwrap_or(0);
                    let rendered = match types.as_scalar(f.ty) {
                        Some(s) if f.name == "Addr" => {
                            // Addresses print hexadecimal, like GDB pointer
                            // fields; scalar masking still applies.
                            format!("0x{:X}", s.truncate(w))
                        }
                        Some(s) => s.render(w),
                        None => format!("0x{w:X}"),
                    };
                    out.push_str(&format!("{} = {}", f.name, rendered));
                }
                out.push_str(" }");
                out
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.words.len() == 1 {
            write!(f, "{}", self.words[0])
        } else {
            write!(f, "{:?}", self.words)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with_mb() -> (TypeTable, TypeId) {
        let mut t = TypeTable::new();
        let id = t.declare_struct(
            "CbCrMB_t",
            &[
                ("Addr".into(), TypeTable::U32),
                ("InterNotIntra".into(), TypeTable::U8),
                ("Izz".into(), TypeTable::I32),
            ],
        );
        (t, id)
    }

    #[test]
    fn short_rendering_matches_paper_shapes() {
        let t = TypeTable::new();
        let v = Value::scalar(TypeTable::U16, 5);
        assert_eq!(v.render_short(&t), "(U16) 5");

        let (t, mb) = table_with_mb();
        let v = Value::record(mb, vec![0x145d, 1, 168_460_492]);
        assert_eq!(v.render_short(&t), "(CbCrMB_t) {Addr=0x145D,...}");
    }

    #[test]
    fn full_rendering_expands_fields() {
        let (t, mb) = table_with_mb();
        let v = Value::record(mb, vec![0x145d, 1, 168_460_492]);
        let full = v.render_full(&t);
        assert!(full.contains("Addr = 0x145D"), "{full}");
        assert!(full.contains("InterNotIntra = 1"), "{full}");
        assert!(full.contains("Izz = 168460492"), "{full}");
    }

    #[test]
    fn field_access() {
        let (t, mb) = table_with_mb();
        let v = Value::record(mb, vec![7, 1, 9]);
        assert_eq!(v.field(&t, "Izz"), Some(9));
        assert_eq!(v.field(&t, "nope"), None);
    }

    #[test]
    fn narrow_fields_are_masked_on_render() {
        let (t, mb) = table_with_mb();
        let v = Value::record(mb, vec![0, 0x1ff, 0]);
        assert!(v.render_full(&t).contains("InterNotIntra = 255"));
    }
}
