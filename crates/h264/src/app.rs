//! The decoder application: architecture description and kernel sources.
//!
//! The graph reproduces Fig. 4 of the paper: module `front` contains the
//! filters `hwcfg`, `bh` and `pipe`; module `pred` contains `ipred`,
//! `ipf`, `red` and `mc`. Interface names are taken from the paper's
//! session transcripts (`pipe_MbType_out`, `Red2PipeCbMB_in`,
//! `Add2Dblock_ipf_out`, `Pipe_in`, `Hwcfg_in`, ...), including the
//! `CbCrMB_t` record type with the fields shown in §VI-E (`Addr`,
//! `InterNotIntra`, `Izz`).
//!
//! The actual computation is a synthetic macroblock pipeline (the real
//! H.264 kernels are proprietary; the substitution is documented in
//! DESIGN.md): every step decodes one "macroblock" from one bitstream word
//! and one config word, through bit-shuffling, a zigzag-flavoured residual
//! transform, clipped intra prediction, a loop filter and motion
//! compensation, producing one frame word. The [`crate::golden`] module
//! mirrors the arithmetic exactly.

use mind::SourceRegistry;

/// Which seeded defect to build into the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bug {
    /// Correct decoder.
    None,
    /// Architecture/rate bug: `pipe` pushes 3 tokens per step towards
    /// `ipf`, which consumes one — the link backlog of Fig. 4.
    RateMismatch,
    /// Token-value bug: `red` mis-computes `Izz` for one specific
    /// macroblock (the §VI-D "observable error" hunted via recording and
    /// `info last_token`).
    WrongValue,
    /// Token-passing bug: `ipred` reads two tokens from `Red_in` while
    /// `red` produces one per step — the application deadlocks (§III's
    /// motivation for token injection).
    Deadlock,
    /// Memory bug: `hwcfg` stores through a raw pointer into the unbacked
    /// hole just past its cluster's L1 bank (bcv: MEM302; at runtime the
    /// PE faults on the unmapped address).
    OobStore,
    /// Race bug: `hwcfg` writes a "scratch" L2 word that `bh` reads, with
    /// no token dependency ordering their firings (bcv: RACE401).
    SharedScratch,
    /// Data-dependent RACE401 false positive: the same unordered
    /// store/load pair on the L2 scratch word, but `bh` multiplies the
    /// loaded value by zero — statically indistinguishable from
    /// [`Bug::SharedScratch`], dynamically unobservable under *every*
    /// schedule. The multiverse witness gate must refute it.
    BenignScratch,
    /// DMA bug: `mc` pokes a word inside a host-boundary FIFO window that
    /// the DMA engine copies asynchronously (bcv: RACE402).
    DmaOverlap,
    /// Buffer-sizing bug: `red` bursts both residual halves into
    /// `red_ipred_out` before releasing the macroblock header, and the
    /// ADL pins that FIFO to a single slot — one below the minimal
    /// deadlock-free capacity (sched: SCH501; at runtime `red` wedges in
    /// `SpaceWait` on the undersized link).
    TightFifo,
}

/// Architecture description (shared by every variant; behaviour bugs live
/// in the kernels).
pub const DECODER_ADL: &str = "\
@Struct
record CbCrMB_t {
  U32 Addr;
  U8  InterNotIntra;
  I32 Izz;
}

@Module
composite Decoder {
  input U32 as bits_in;
  input U32 as cfg_in;
  output U32 as frame_out;
  contains Front as front;
  contains Pred as pred;
  binds this.bits_in to front.bits_in;
  binds this.cfg_in to front.cfg_in;
  binds front.frame_out to this.frame_out;
  binds front.pipe_ipf to pred.pipe_ipf cap 32;
  binds front.pipe_ipred to pred.pipe_ipred;
  binds front.hwcfg_ipred to pred.hwcfg_ipred;
  binds front.bh_red to pred.bh_red;
  binds pred.red_pipe to front.red_pipe;
  binds pred.mb_pipe to front.mb_pipe;
  binds pred.mc_pipe to front.mc_pipe;
}

@Module
composite Front {
  contains as controller {
    source front_ctrl.c;
  }
  input U32 as bits_in;
  input U32 as cfg_in;
  output U32 as frame_out;
  output U32 as pipe_ipf;
  output U32 as pipe_ipred;
  output U32 as hwcfg_ipred;
  output U32 as bh_red;
  input CbCrMB_t as red_pipe;
  input I32 as mb_pipe;
  input U32 as mc_pipe;
  contains Hwcfg as hwcfg;
  contains Bh as bh;
  contains Pipe as pipe;
  binds this.bits_in to bh.bits_in;
  binds this.cfg_in to hwcfg.cfg_in;
  binds hwcfg.pipe_MbType_out to pipe.MbType_in;
  binds hwcfg.ipred_cfg_out to this.hwcfg_ipred;
  binds bh.red_out to this.bh_red;
  binds pipe.pipe_ipf_out to this.pipe_ipf;
  binds pipe.pipe_ipred_out to this.pipe_ipred;
  binds this.red_pipe to pipe.Red2PipeCbMB_in;
  binds this.mb_pipe to pipe.mb_in;
  binds this.mc_pipe to pipe.mc_in;
  binds pipe.frame_out to this.frame_out;
}

@Module
composite Pred {
  contains as controller {
    source pred_ctrl.c;
  }
  input U32 as pipe_ipf;
  input U32 as pipe_ipred;
  input U32 as hwcfg_ipred;
  input U32 as bh_red;
  output CbCrMB_t as red_pipe;
  output I32 as mb_pipe;
  output U32 as mc_pipe;
  contains Red as red;
  contains Ipred as ipred;
  contains Ipf as ipf;
  contains Mc as mc;
  binds this.bh_red to red.bh_in;
  binds red.Red2PipeCbMB_out to this.red_pipe;
  binds red.red_ipred_out to ipred.Red_in;
  binds red.red_mc_out to mc.red_in;
  binds this.pipe_ipred to ipred.Pipe_in;
  binds this.hwcfg_ipred to ipred.Hwcfg_in;
  binds ipred.Add2Dblock_ipf_out to ipf.Add2Dblock_ipred_in;
  binds ipred.Add2Dblock_MB_out to this.mb_pipe;
  binds this.pipe_ipf to ipf.pipe_in cap 32;
  binds ipf.ipf_mc_out to mc.ipf_in;
  binds mc.mc_out to this.mc_pipe;
}

@Filter
primitive Hwcfg {
  data stddefs.h:U32 cfg_count;
  source hwcfg.c;
  input stddefs.h:U32 as cfg_in;
  output stddefs.h:U16 as pipe_MbType_out;
  output stddefs.h:U32 as ipred_cfg_out;
}

@Filter
primitive Bh {
  source bh.c;
  input stddefs.h:U32 as bits_in;
  output stddefs.h:U32 as red_out;
}

@Filter
primitive Pipe {
  data stddefs.h:U32 seq;
  source pipe.c;
  input stddefs.h:U16 as MbType_in;
  input CbCrMB_t as Red2PipeCbMB_in;
  input stddefs.h:I32 as mb_in;
  input stddefs.h:U32 as mc_in;
  output stddefs.h:U32 as pipe_ipf_out;
  output stddefs.h:U32 as pipe_ipred_out;
  output stddefs.h:U32 as frame_out;
}

@Filter
primitive Red {
  data stddefs.h:U32 mb_count;
  source red.c;
  input stddefs.h:U32 as bh_in;
  output CbCrMB_t as Red2PipeCbMB_out;
  output stddefs.h:U32 as red_ipred_out;
  output stddefs.h:U32 as red_mc_out;
}

@Filter
primitive Ipred {
  source ipred.c;
  input stddefs.h:U32 as Pipe_in;
  input stddefs.h:U32 as Hwcfg_in;
  input stddefs.h:U32 as Red_in;
  output stddefs.h:I32 as Add2Dblock_ipf_out;
  output stddefs.h:I32 as Add2Dblock_MB_out;
}

@Filter
primitive Ipf {
  source ipf.c;
  input stddefs.h:U32 as pipe_in;
  input stddefs.h:I32 as Add2Dblock_ipred_in;
  output stddefs.h:U32 as ipf_mc_out;
}

@Filter
primitive Mc {
  source mc.c;
  input stddefs.h:U32 as red_in;
  input stddefs.h:U32 as ipf_in;
  output stddefs.h:U32 as mc_out;
}
";

/// Architecture description for a decoder variant. Identical to
/// [`DECODER_ADL`] except for [`Bug::TightFifo`], which pins the
/// `red -> ipred` residual FIFO to one slot — the seeded sizing defect
/// the static buffer analysis (SCH501) and the `--sched-check capacity`
/// differential gate both point at.
pub fn decoder_adl(bug: Bug) -> String {
    if bug == Bug::TightFifo {
        DECODER_ADL.replace(
            "binds red.red_ipred_out to ipred.Red_in;",
            "binds red.red_ipred_out to ipred.Red_in cap 1;",
        )
    } else {
        DECODER_ADL.to_string()
    }
}

const FRONT_CTRL: &str = "\
void work() {
    while (pedf.run()) {
        pedf.step_begin();
        pedf.fire(hwcfg);
        pedf.fire(bh);
        pedf.fire(pipe);
        pedf.wait_init();
        pedf.wait_sync();
        pedf.step_end();
    }
}
";

const PRED_CTRL: &str = "\
void work() {
    while (pedf.run()) {
        pedf.step_begin();
        pedf.fire(red);
        pedf.fire(ipred);
        pedf.fire(ipf);
        pedf.fire(mc);
        pedf.wait_init();
        pedf.wait_sync();
        pedf.step_end();
    }
}
";

fn hwcfg_src(bug: Bug) -> String {
    let extra = match bug {
        // Memory bug: one word past the cluster-0 L1 bank (16Ki words at
        // 0x10000000) — a statically provable unbacked-hole store.
        Bug::OobStore => "\n    pedf.mem[0x10004000] = c;",
        // Race bug: publish the config word through a raw L2 scratch word
        // instead of a FIFO; nothing orders `bh` against this store.
        Bug::SharedScratch | Bug::BenignScratch => "\n    pedf.mem[0x2000F000] = c;",
        _ => "",
    };
    format!(
        "\
void work() {{
    U32 c = pedf.io.cfg_in[0];{extra}
    // MB types cycle 5, 10, 15 (the values recorded in the paper's
    // `iface hwcfg::pipe_MbType_out print` transcript).
    pedf.io.pipe_MbType_out[0] = (c % 3 + 1) * 5;
    pedf.io.ipred_cfg_out[0] = c & 7;
    pedf.data.cfg_count = pedf.data.cfg_count + 1;
}}
"
    )
}

fn bh_src(bug: Bug) -> String {
    let mask = match bug {
        // Race bug (consumer side): read hwcfg's scratch word raw.
        Bug::SharedScratch => "pedf.mem[0x2000F000]",
        // Benign variant: same raw read, but its value is multiplied away
        // — no schedule can make the race observable.
        Bug::BenignScratch => "(pedf.mem[0x2000F000] * 0 + 0x5A5A)",
        _ => "0x5A5A",
    };
    format!(
        "\
void work() {{
    // Bitstream unmasking: the entropy-decoding stand-in.
    pedf.io.red_out[0] = pedf.io.bits_in[0] ^ {mask};
}}
"
    )
}

/// The `pipe` kernel. Outputs are pushed *before* the pred-side results
/// are consumed: the in-step feedback (pipe -> ipred/ipf -> mc -> pipe)
/// resolves as a wavefront, which is exactly the dynamic-dataflow
/// behaviour a decidable model would reject.
fn pipe_src(bug: Bug) -> String {
    if bug == Bug::TightFifo {
        // Sizing variant: the macroblock header is consumed *before* the
        // pred-side outputs are released, closing the dependency cycle
        // red -> pipe -> ipred that makes the residual FIFO's size
        // matter: with fewer than two slots, `red`'s burst wedges.
        return "\
void work() {
    U32 mbtype = pedf.io.MbType_in[0];
    CbCrMB_t mb;
    mb = pedf.io.Red2PipeCbMB_in[0];
    pedf.io.pipe_ipred_out[0] = mbtype + pedf.data.seq;
    pedf.io.pipe_ipf_out[0] = mbtype * 2 + 1;
    I32 rec = pedf.io.mb_in[0];
    U32 m = pedf.io.mc_in[0];
    pedf.io.frame_out[0] = (mb.Izz + rec + m + mbtype) & 0xFFFFFF;
    pedf.data.seq = pedf.data.seq + 1;
}
"
        .to_string();
    }
    let dispatch = if bug == Bug::RateMismatch {
        // Architecture bug: three tokens pushed per step instead of one.
        "    U32 i;
    for (i = 0; i < 3; i = i + 1) {
        pedf.io.pipe_ipf_out[i] = mbtype * 2 + 1;
    }"
    } else {
        "    pedf.io.pipe_ipf_out[0] = mbtype * 2 + 1;"
    };
    format!(
        "\
void work() {{
    U32 mbtype = pedf.io.MbType_in[0];
    pedf.io.pipe_ipred_out[0] = mbtype + pedf.data.seq;
{dispatch}
    CbCrMB_t mb;
    mb = pedf.io.Red2PipeCbMB_in[0];
    I32 rec = pedf.io.mb_in[0];
    U32 m = pedf.io.mc_in[0];
    pedf.io.frame_out[0] = (mb.Izz + rec + m + mbtype) & 0xFFFFFF;
    pedf.data.seq = pedf.data.seq + 1;
}}
"
    )
}

fn red_src(bug: Bug) -> String {
    if bug == Bug::TightFifo {
        // Sizing variant: both residual halves burst out first; the
        // header token that unblocks `pipe` (and transitively `ipred`'s
        // pops) only leaves after the burst fits in the FIFO.
        return "\
void work() {
    U32 v = pedf.io.bh_in[0];
    U32 izz = (v * 13 + 7) & 0xFFFF;
    pedf.io.red_ipred_out[0] = v >> 1;
    pedf.io.red_ipred_out[1] = v >> 3;
    CbCrMB_t mb;
    mb.Addr = pedf.data.mb_count * 16 + 0x1000;
    mb.InterNotIntra = v & 1;
    mb.Izz = izz;
    pedf.io.Red2PipeCbMB_out[0] = mb;
    pedf.io.red_mc_out[0] = v >> 2;
    pedf.data.mb_count = pedf.data.mb_count + 1;
}
"
        .to_string();
    }
    let izz = if bug == Bug::WrongValue {
        // Value bug: one specific macroblock gets a corrupted residual.
        "    U32 izz = (v * 13 + 7) & 0xFFFF;
    if (pedf.data.mb_count == 5) {
        izz = izz + 0x4000;
    }"
    } else {
        "    U32 izz = (v * 13 + 7) & 0xFFFF;"
    };
    format!(
        "\
void work() {{
    U32 v = pedf.io.bh_in[0];
{izz}
    CbCrMB_t mb;
    mb.Addr = pedf.data.mb_count * 16 + 0x1000;
    mb.InterNotIntra = v & 1;
    mb.Izz = izz;
    pedf.io.Red2PipeCbMB_out[0] = mb;
    pedf.io.red_ipred_out[0] = v >> 1;
    pedf.io.red_mc_out[0] = v >> 2;
    pedf.data.mb_count = pedf.data.mb_count + 1;
}}
"
    )
}

const IPRED: &str = "\
U32 clip255(U32 v) {
    if (v > 255) { return 255; }
    return v;
}
void work() {
    U32 p = pedf.io.Pipe_in[0];
    U32 h = pedf.io.Hwcfg_in[0];
    U32 r = pedf.io.Red_in[0];
    U32 pred = (p + h) * 2 + r;
    pedf.io.Add2Dblock_ipf_out[0] = clip255(pred);
    pedf.io.Add2Dblock_MB_out[0] = pred ^ 0xF;
}
";

const IPRED_DEADLOCK: &str = "\
U32 clip255(U32 v) {
    if (v > 255) { return 255; }
    return v;
}
void work() {
    U32 p = pedf.io.Pipe_in[0];
    U32 h = pedf.io.Hwcfg_in[0];
    // Token-passing bug: reads a second residual token that red never
    // produces; the pipeline starves and deadlocks.
    U32 r = pedf.io.Red_in[0] + pedf.io.Red_in[1];
    U32 pred = (p + h) * 2 + r;
    pedf.io.Add2Dblock_ipf_out[0] = clip255(pred);
    pedf.io.Add2Dblock_MB_out[0] = pred ^ 0xF;
}
";

/// `ipred` for [`Bug::TightFifo`]: consumes both residual halves `red`
/// bursts per step — the rates balance (2:2), only the FIFO is too small.
const IPRED_WIDE: &str = "\
U32 clip255(U32 v) {
    if (v > 255) { return 255; }
    return v;
}
void work() {
    U32 p = pedf.io.Pipe_in[0];
    U32 h = pedf.io.Hwcfg_in[0];
    U32 r = pedf.io.Red_in[0] + pedf.io.Red_in[1];
    U32 pred = (p + h) * 2 + r;
    pedf.io.Add2Dblock_ipf_out[0] = clip255(pred);
    pedf.io.Add2Dblock_MB_out[0] = pred ^ 0xF;
}
";

const IPF: &str = "\
void work() {
    U32 a = pedf.io.pipe_in[0];
    I32 b = pedf.io.Add2Dblock_ipred_in[0];
    pedf.io.ipf_mc_out[0] = (a + b) >> 1;
}
";

fn mc_src(bug: Bug) -> String {
    let extra = if bug == Bug::DmaOverlap {
        // DMA bug: 0x30000010 sits inside the first host-boundary FIFO
        // window in L3, which the DMA engine fills asynchronously.
        "\n    pedf.mem[0x30000010] = r;"
    } else {
        ""
    };
    format!(
        "\
void work() {{
    U32 r = pedf.io.red_in[0];
    U32 f = pedf.io.ipf_in[0];{extra}
    pedf.io.mc_out[0] = r * 3 + f;
}}
"
    )
}

/// Kernel sources for a decoder variant.
pub fn decoder_sources(bug: Bug) -> SourceRegistry {
    let mut s = SourceRegistry::new();
    s.add("front_ctrl.c", FRONT_CTRL);
    s.add("pred_ctrl.c", PRED_CTRL);
    s.add("hwcfg.c", &hwcfg_src(bug));
    s.add("bh.c", &bh_src(bug));
    s.add("pipe.c", &pipe_src(bug));
    s.add("red.c", &red_src(bug));
    s.add(
        "ipred.c",
        match bug {
            Bug::Deadlock => IPRED_DEADLOCK,
            Bug::TightFifo => IPRED_WIDE,
            _ => IPRED,
        },
    );
    s.add("ipf.c", IPF);
    s.add("mc.c", &mc_src(bug));
    s
}
