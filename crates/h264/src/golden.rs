//! Golden reference model: the decoder pipeline re-implemented directly
//! in Rust, mirroring the kernel arithmetic bit for bit (including the
//! signed right shift in the loop filter and the wrapping additions).
//!
//! The end-to-end tests decode the same synthetic stream on the simulated
//! platform and compare every output word against this model — the
//! "known-good decode" that the case study's seeded bugs diverge from.

/// The environment's bitstream generator must match
/// [`pedf::ValueGen::Lcg`] exactly.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u32,
}

impl Lcg {
    pub fn new(seed: u32) -> Self {
        Lcg { state: seed }
    }

    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u32 {
        self.state = self
            .state
            .wrapping_mul(1_664_525)
            .wrapping_add(1_013_904_223);
        self.state
    }
}

fn clip255(v: u32) -> u32 {
    if v > 255 {
        255
    } else {
        v
    }
}

/// Decode macroblock `i` (0-based) from one bitstream word and one config
/// word; returns the frame output word.
pub fn decode_mb(i: u32, bits: u32, cfg: u32) -> u32 {
    // bh
    let v = bits ^ 0x5a5a;
    // hwcfg
    let mbtype = (cfg % 3 + 1) * 5;
    let hcfg = cfg & 7;
    // red
    let izz = v.wrapping_mul(13).wrapping_add(7) & 0xffff;
    // pipe dispatch (seq == i)
    let p_ipred = mbtype.wrapping_add(i);
    let p_ipf = mbtype * 2 + 1;
    // ipred
    let pred = p_ipred
        .wrapping_add(hcfg)
        .wrapping_mul(2)
        .wrapping_add(v >> 1);
    let to_ipf = clip255(pred);
    let mb_out = pred ^ 0xf;
    // ipf (signed shift: Add2Dblock_ipred_in is I32)
    let filtered = (p_ipf.wrapping_add(to_ipf) as i32 >> 1) as u32;
    // mc
    let m = (v >> 2).wrapping_mul(3).wrapping_add(filtered);
    // pipe reassembly
    izz.wrapping_add(mb_out)
        .wrapping_add(m)
        .wrapping_add(mbtype)
        & 0xff_ffff
}

/// Decode `n` macroblocks from the deterministic environment streams
/// (bits = LCG(seed), cfg = 0,1,2,...); returns the frame words.
pub fn decode_stream(n: u32, seed: u32) -> Vec<u32> {
    let mut lcg = Lcg::new(seed);
    (0..n).map(|i| decode_mb(i, lcg.next(), i)).collect()
}

/// The same rolling checksum as [`pedf::EnvSink`] computes.
pub fn checksum(values: &[u32]) -> u64 {
    values.iter().fold(0u64, |acc, v| {
        acc.wrapping_mul(31).wrapping_add(u64::from(*v))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_matches_pedf() {
        let mut a = Lcg::new(77);
        let mut b = pedf::ValueGen::Lcg { state: 77 };
        for _ in 0..32 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn decode_is_deterministic_and_masked() {
        let x = decode_stream(16, 42);
        let y = decode_stream(16, 42);
        assert_eq!(x, y);
        assert!(x.iter().all(|v| *v <= 0xff_ffff));
        // A different seed gives a different stream.
        assert_ne!(decode_stream(16, 43), x);
    }

    #[test]
    fn checksum_matches_sink_formula() {
        let mut sink = pedf::EnvSink::new(pedf::ConnId(0), 1);
        for v in [3u32, 1, 4, 1, 5] {
            sink.record(v);
        }
        assert_eq!(sink.checksum, checksum(&[3, 1, 4, 1, 5]));
    }

    #[test]
    fn mbtype_cycle_matches_paper_values() {
        // cfg = 0, 1, 2 -> MB types 5, 10, 15 (the §VI-D transcript).
        for (cfg, expect) in [(0, 5), (1, 10), (2, 15), (3, 5)] {
            assert_eq!((cfg % 3 + 1) * 5, expect);
        }
    }
}
