//! `h264-pipeline` — the case-study application (§VI).
//!
//! An H.264-style macroblock decoding pipeline written against PEDF, with
//! the exact module/filter decomposition and interface names of the
//! paper's Fig. 4, a bit-exact golden model for output validation, and
//! seeded-bug variants for the debugging experiments:
//!
//! * [`Bug::RateMismatch`] — the Fig. 4 scenario (token backlog on
//!   `pipe -> ipf`);
//! * [`Bug::WrongValue`] — the §VI-D token-flow investigation;
//! * [`Bug::Deadlock`] — the §III token-injection scenario.

pub mod app;
pub mod golden;

pub use app::{decoder_adl, decoder_sources, Bug, DECODER_ADL};
pub use mind::CompiledApp;

use std::collections::BTreeMap;

use p2012::PlatformConfig;
use pedf::{ActorId, EnvSink, EnvSource, System, ValueGen};

/// Build a decoder variant, ready to boot. `n_mbs` bounds both module
/// step counts (one macroblock per step).
pub fn build_decoder(
    bug: Bug,
    n_mbs: u64,
    config: PlatformConfig,
) -> Result<(System, CompiledApp), mind::BuildError> {
    build_decoder_with_caps(bug, n_mbs, config, &BTreeMap::new())
}

/// [`build_decoder`], with FIFO capacity overrides (producer
/// `actor::conn` → slots) applied over the ADL's `cap` annotations —
/// the hook the `analyze --sched-check` differential gate uses to replay
/// statically predicted buffer sizes on the real simulator.
pub fn build_decoder_with_caps(
    bug: Bug,
    n_mbs: u64,
    config: PlatformConfig,
    caps: &BTreeMap<String, u32>,
) -> Result<(System, CompiledApp), mind::BuildError> {
    let (mut sys, app) =
        mind::build_with_caps(&decoder_adl(bug), &decoder_sources(bug), config, caps)?;
    for m in ["front", "pred"] {
        let id = app.actor(m).expect("module exists");
        sys.runtime.set_max_steps(id, n_mbs);
    }
    Ok((sys, app))
}

/// Attach the environment streams (bitstream + config) and the frame sink.
/// Must run **after** boot (the runtime validates against the live graph).
pub fn attach_env(
    sys: &mut System,
    app: &CompiledApp,
    n_mbs: u64,
    seed: u32,
) -> Result<(), String> {
    sys.runtime.add_source(
        EnvSource::new(app.boundary_in["bits_in"], 2, ValueGen::Lcg { state: seed })
            .with_limit(n_mbs),
    )?;
    sys.runtime.add_source(
        EnvSource::new(
            app.boundary_in["cfg_in"],
            2,
            ValueGen::Counter { next: 0, step: 1 },
        )
        .with_limit(n_mbs),
    )?;
    sys.runtime
        .add_sink(EnvSink::new(app.boundary_out["frame_out"], 1))?;
    Ok(())
}

/// Result of a decoder run.
#[derive(Debug, Clone)]
pub struct DecodeResult {
    pub frames: Vec<u32>,
    pub checksum: u64,
    pub cycles: u64,
    pub finished: bool,
    pub tokens_moved: u64,
}

/// Boot and run a decoder without any debugger attached — the baseline of
/// the overhead experiment (E1) and the golden-comparison path.
pub fn run_decoder(
    bug: Bug,
    n_mbs: u64,
    seed: u32,
    max_cycles: u64,
) -> Result<DecodeResult, String> {
    let (mut sys, app) =
        build_decoder(bug, n_mbs, PlatformConfig::default()).map_err(|e| e.to_string())?;
    sys.boot(app.boot_entry)?;
    attach_env(&mut sys, &app, n_mbs, seed)?;
    let finished = sys.run_to_quiescence(max_cycles);
    if let Some((pe, fault)) = sys.first_fault() {
        return Err(format!("fault on {pe}: {fault}"));
    }
    let sink = sys
        .runtime
        .sink_for(app.boundary_out["frame_out"])
        .expect("sink attached");
    Ok(DecodeResult {
        frames: sink.tail.clone(),
        checksum: sink.checksum,
        cycles: sys.clock(),
        finished,
        tokens_moved: sys.runtime.stats.tokens_pushed,
    })
}

/// Actor ids frequently needed by experiments.
pub fn actor(app: &CompiledApp, name: &str) -> ActorId {
    app.actor(name)
        .unwrap_or_else(|| panic!("decoder has an actor named `{name}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_decode_matches_the_golden_model() {
        let n = 24;
        let seed = 0xbeef;
        let r = run_decoder(Bug::None, n, seed, 2_000_000).unwrap();
        assert!(r.finished, "decoder did not finish");
        let expect = golden::decode_stream(n as u32, seed);
        assert_eq!(r.frames.len(), n as usize);
        assert_eq!(r.frames, expect);
        assert_eq!(r.checksum, golden::checksum(&expect));
    }

    #[test]
    fn decode_is_reproducible() {
        let a = run_decoder(Bug::None, 8, 7, 2_000_000).unwrap();
        let b = run_decoder(Bug::None, 8, 7, 2_000_000).unwrap();
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.cycles, b.cycles, "cycle-level determinism");
    }

    #[test]
    fn graph_matches_fig4_structure() {
        let (_, app) = build_decoder(Bug::None, 1, PlatformConfig::default()).unwrap();
        let g = &app.graph;
        // Modules front & pred under the Decoder assembly.
        let front = g.actor_by_name("front").unwrap();
        let pred = g.actor_by_name("pred").unwrap();
        assert_eq!(
            g.children(front.id)
                .filter(|a| a.kind == pedf::ActorKind::Filter)
                .count(),
            3
        );
        assert_eq!(
            g.children(pred.id)
                .filter(|a| a.kind == pedf::ActorKind::Filter)
                .count(),
            4
        );
        // The paper's interface names resolve.
        for spec in [
            "hwcfg::pipe_MbType_out",
            "pipe::Red2PipeCbMB_in",
            "ipred::Add2Dblock_ipf_out",
            "ipred::Pipe_in",
            "ipred::Hwcfg_in",
            "ipf::Add2Dblock_ipred_in",
        ] {
            assert!(app.conn(spec).is_some(), "{spec}");
        }
        // CbCrMB_t has the §VI-E fields.
        let ty = app.types.lookup_by_name("CbCrMB_t").unwrap();
        for field in ["Addr", "InterNotIntra", "Izz"] {
            assert!(app.types.field(ty, field).is_some(), "{field}");
        }
        // The pipe -> ipf chain flattens into one link with capacity 32.
        let pipe_conn = app.conn("pipe::pipe_ipf_out").unwrap();
        let link = g.conn(pipe_conn).link.unwrap();
        assert_eq!(g.link(link).capacity, 32);
        let (_, to) = g.link_ends(link);
        assert_eq!(g.actor(to).name, "ipf");
    }

    #[test]
    fn wrong_value_bug_corrupts_exactly_one_macroblock() {
        let n = 12;
        let seed = 0xbeef;
        let good = run_decoder(Bug::None, n, seed, 2_000_000).unwrap();
        let bad = run_decoder(Bug::WrongValue, n, seed, 2_000_000).unwrap();
        assert!(bad.finished);
        let diffs: Vec<usize> = good
            .frames
            .iter()
            .zip(&bad.frames)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diffs, vec![5], "only MB #5 is corrupted");
    }

    #[test]
    fn rate_mismatch_accumulates_backlog() {
        let (mut sys, app) =
            build_decoder(Bug::RateMismatch, 12, PlatformConfig::default()).unwrap();
        sys.boot(app.boot_entry).unwrap();
        attach_env(&mut sys, &app, 12, 1).unwrap();
        sys.run_to_quiescence(3_000_000);
        assert_eq!(sys.first_fault(), None);
        let pipe_conn = app.conn("pipe::pipe_ipf_out").unwrap();
        let link = app.graph.conn(pipe_conn).link.unwrap();
        // 12 steps x 3 pushed, 12 consumed -> 24 left queued.
        assert_eq!(sys.runtime.occupancy(link), 24);
    }

    #[test]
    fn tight_fifo_wedges_at_one_slot_and_runs_at_two() {
        // At the ADL's single slot, `red` blocks pushing the second
        // residual half while `pipe` waits for the header: deadlock,
        // blamed on the undersized red -> ipred link.
        let (mut sys, app) = build_decoder(Bug::TightFifo, 8, PlatformConfig::default()).unwrap();
        sys.boot(app.boot_entry).unwrap();
        attach_env(&mut sys, &app, 8, 1).unwrap();
        assert!(!sys.run_to_quiescence(500_000), "cap 1 must wedge");
        assert!(sys.platform.is_deadlocked());
        let red_conn = app.conn("red::red_ipred_out").unwrap();
        let link = app.graph.conn(red_conn).link.unwrap();
        let red_pe = sys.runtime.graph.actor(actor(&app, "red")).pe.unwrap();
        assert!(matches!(
            sys.pe_status(red_pe),
            p2012::PeStatus::Blocked(p2012::BlockReason::SpaceWait { link: l }) if l == link.0
        ));
        // One more slot is exactly enough.
        let caps: BTreeMap<String, u32> = [("red::red_ipred_out".to_string(), 2)].into();
        let (mut sys, app) =
            build_decoder_with_caps(Bug::TightFifo, 8, PlatformConfig::default(), &caps).unwrap();
        sys.boot(app.boot_entry).unwrap();
        attach_env(&mut sys, &app, 8, 1).unwrap();
        assert!(sys.run_to_quiescence(2_000_000), "cap 2 must complete");
        assert_eq!(sys.first_fault(), None);
    }

    #[test]
    fn capacity_override_typo_is_a_build_error() {
        let caps: BTreeMap<String, u32> = [("red::no_such_conn".to_string(), 2)].into();
        let err = build_decoder_with_caps(Bug::None, 1, PlatformConfig::default(), &caps)
            .expect_err("unknown override must fail the build");
        assert!(err.to_string().contains("no_such_conn"), "{err}");
    }

    #[test]
    fn deadlock_bug_deadlocks() {
        let (mut sys, app) = build_decoder(Bug::Deadlock, 8, PlatformConfig::default()).unwrap();
        sys.boot(app.boot_entry).unwrap();
        attach_env(&mut sys, &app, 8, 1).unwrap();
        let finished = sys.run_to_quiescence(500_000);
        assert!(!finished, "the deadlock variant must not finish");
        assert!(sys.platform.is_deadlocked());
        // ipred is the filter stuck waiting for tokens.
        let ipred = actor(&app, "ipred");
        let pe = sys.runtime.graph.actor(ipred).pe.unwrap();
        assert!(matches!(
            sys.pe_status(pe),
            p2012::PeStatus::Blocked(p2012::BlockReason::TokenWait { .. })
        ));
    }
}
