//! A self-contained, dependency-free subset of the `proptest` crate.
//!
//! The build environment for this repository has no network access, so the
//! real `proptest` cannot be fetched from crates.io. This shim implements
//! the slice of the API the workspace's property tests actually use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`Strategy`] for integer ranges, tuples, regex-subset string
//!   literals, `any::<T>()`, `prop::collection::{vec, btree_set}`,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Sampling is uniform (no shrinking, no edge-case bias) and seeded
//! deterministically per test run so CI is reproducible.

pub mod strategy;

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (the fields used here).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// Deterministic xorshift64* RNG used by every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seeded(seed: u64) -> Self {
        TestRng {
            state: seed | 1, // never zero
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

pub mod prop {
    pub mod collection {
        use crate::strategy::{BTreeSetStrategy, Strategy, VecStrategy};
        use std::ops::Range;

        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
            BTreeSetStrategy { element, size }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Expands each contained function into a `#[test]` that samples its
/// strategies `config.cases` times. The body runs inside a closure so
/// `prop_assume!` can skip a case with `return`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl ($cfg) $($rest)* }
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? )
        $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                // Different tests draw different streams: hash the name.
                let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    seed = (seed ^ b as u64)
                        .wrapping_mul(0x1000_0000_01b3);
                }
                let mut rng = $crate::TestRng::seeded(seed);
                for _case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(
                                &($strat), &mut rng);
                    )+
                    #[allow(clippy::redundant_closure_call)]
                    (|| $body)();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @impl ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when the assumption fails (plain `return` from
/// the per-case closure the [`proptest!`] macro wraps bodies in).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seeded(7);
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::seeded(42);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9]{0,6}(_[a-z][a-z0-9]{0,6}){0,3}".generate(&mut rng);
            assert!(!s.is_empty());
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn btree_set_has_distinct_elements_in_size_range() {
        let mut rng = TestRng::seeded(3);
        for _ in 0..100 {
            let s = prop::collection::btree_set(0u32..1000, 1..40).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 40);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_tuples_and_vecs(
            ops in prop::collection::vec((any::<bool>(), 0u32..10), 0..20),
            n in 1u32..5,
        ) {
            prop_assume!(n != 4);
            prop_assert!(ops.len() < 20);
            for (_, v) in ops {
                prop_assert!(v < 10);
            }
        }
    }
}
