//! Value-generation strategies: the sampling half of proptest, without
//! shrinking.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::Range;

use crate::TestRng;

/// A source of random values of one type.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_bool()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty strategy range {}..{}", self.start, self.end
                );
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.below(self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub element: S,
    pub size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.clone().generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    pub element: S,
    pub size: Range<usize>,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.clone().generate(rng);
        let mut out = BTreeSet::new();
        // A small element domain can make `target` unreachable; bound the
        // attempts so generation always terminates.
        for _ in 0..target.saturating_mul(16).max(16) {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}

/// String literals act as regex-subset strategies, like in real proptest.
/// Supported syntax: literal chars, `[a-z0-9_]` classes (ranges and single
/// chars), `( .. )` groups, and the `{n}`, `{m,n}`, `?`, `*`, `+`
/// quantifiers.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pat = parse_pattern(self);
        let mut out = String::new();
        gen_seq(&pat, rng, &mut out);
        out
    }
}

#[derive(Debug, Clone)]
enum PatKind {
    Lit(char),
    Class(Vec<(char, char)>),
    Group(Vec<PatNode>),
}

#[derive(Debug, Clone)]
struct PatNode {
    kind: PatKind,
    min: u32,
    max: u32,
}

fn parse_pattern(pat: &str) -> Vec<PatNode> {
    let mut chars: Vec<char> = pat.chars().collect();
    chars.reverse(); // pop() from the front
    let seq = parse_seq(&mut chars, false);
    assert!(chars.is_empty(), "unbalanced pattern `{pat}`");
    seq
}

fn parse_seq(rest: &mut Vec<char>, in_group: bool) -> Vec<PatNode> {
    let mut out = Vec::new();
    while let Some(c) = rest.pop() {
        let kind = match c {
            ')' if in_group => return out,
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let a = rest.pop().expect("unterminated class");
                    if a == ']' {
                        break;
                    }
                    if rest.last() == Some(&'-') {
                        rest.pop();
                        let b = rest.pop().expect("unterminated range");
                        ranges.push((a, b));
                    } else {
                        ranges.push((a, a));
                    }
                }
                PatKind::Class(ranges)
            }
            '(' => PatKind::Group(parse_seq(rest, true)),
            '\\' => PatKind::Lit(rest.pop().expect("dangling escape")),
            c => PatKind::Lit(c),
        };
        let (min, max) = parse_quant(rest);
        out.push(PatNode { kind, min, max });
    }
    assert!(!in_group, "unterminated group");
    out
}

fn parse_quant(rest: &mut Vec<char>) -> (u32, u32) {
    match rest.last() {
        Some('?') => {
            rest.pop();
            (0, 1)
        }
        Some('*') => {
            rest.pop();
            (0, 8)
        }
        Some('+') => {
            rest.pop();
            (1, 8)
        }
        Some('{') => {
            rest.pop();
            let mut body = String::new();
            loop {
                let c = rest.pop().expect("unterminated quantifier");
                if c == '}' {
                    break;
                }
                body.push(c);
            }
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier"),
                    n.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n: u32 = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        }
        _ => (1, 1),
    }
}

fn gen_seq(seq: &[PatNode], rng: &mut TestRng, out: &mut String) {
    for node in seq {
        let reps = node.min + rng.below(u64::from(node.max - node.min) + 1) as u32;
        for _ in 0..reps {
            match &node.kind {
                PatKind::Lit(c) => out.push(*c),
                PatKind::Class(ranges) => {
                    let (a, b) = ranges[rng.below(ranges.len() as u64) as usize];
                    let span = (b as u32) - (a as u32) + 1;
                    let c = char::from_u32(a as u32 + rng.below(u64::from(span)) as u32)
                        .expect("class range stays in char space");
                    out.push(c);
                }
                PatKind::Group(inner) => gen_seq(inner, rng, out),
            }
        }
    }
}
