//! Deterministic checkpoint/replay for the P2012 + PEDF simulator.
//!
//! The simulator is cycle-stepped and fully deterministic: the same
//! machine state and the same (recorded) environment inputs always
//! produce the same execution. Reverse debugging therefore reduces to
//! *checkpoint + forward replay* — exactly GDB's record/replay strategy,
//! and the enabling primitive of multiverse debugging (MIO, PAPERS.md).
//!
//! A [`CheckpointManager`] owns a chain of checkpoints:
//!
//! * the **baseline** holds a full [`MemImage`] plus the complete machine
//!   state ([`MachineState`]: every PE's VM state, DMA engines with
//!   in-flight transfers, the PEDF runtime with FIFO counters, scheduler
//!   state and env-I/O cursors);
//! * every later checkpoint stores the machine state plus only the
//!   **dirty pages** written since the previous boundary (copy-on-write
//!   keyed by the `MemoryMap` regions — idle banks cost nothing);
//! * each boundary carries a **chained state hash**: `hash[i] =
//!   fnv64(hash[i-1], machine, dirty pages)`. A replayed execution
//!   recomputes the chain and any mismatch is reported as a `REPLAY501`
//!   finding through the shared `debuginfo::Finding` pipeline — the
//!   engine doubles as a divergence detector proving the simulator stays
//!   deterministic.
//!
//! Restoring to checkpoint `C` rewinds the machine state wholesale and
//! rewinds memory page-wise: only pages written after `C` are touched,
//! each taken from the most recent delta at or before `C` (falling back
//! to the baseline image). Later checkpoints are *kept*, so the replay
//! that follows verifies the hash chain boundary by boundary.

use debuginfo::{Finding, Severity, Word};
use p2012::{MemImage, PageId};
use pedf::{RuntimeState, System};

pub const RULE_DIVERGENCE: &str = "REPLAY501";

// ---- hashing ---------------------------------------------------------------

/// FNV-1a 64-bit, as a [`std::hash::Hasher`]. `DefaultHasher` is not
/// guaranteed stable across releases; divergence hashes must be, so runs
/// can be compared across processes (the CI determinism gate).
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Continue a hash chain from a previous boundary value.
    pub fn chained(prev: u64) -> Self {
        let mut h = Fnv64::new();
        std::hash::Hasher::write_u64(&mut h, prev);
        h
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl std::hash::Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    // Word-at-a-time fast path: one absorb per integer instead of one per
    // byte. The checkpoint engine hashes megabytes of memory content per
    // baseline, and the byte loop dominated `enable_time_travel`. Mixing a
    // whole word per multiply is plenty for divergence detection, stays
    // process-stable, and (unlike the default `to_ne_bytes` forwarding) is
    // endian-independent.
    fn write_u8(&mut self, i: u8) {
        self.write_u64(u64::from(i));
    }

    fn write_u16(&mut self, i: u16) {
        self.write_u64(u64::from(i));
    }

    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0 ^ i).wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

// ---- machine state ---------------------------------------------------------

/// Everything about the simulated machine except memory *content*:
/// platform (clock, PEs, DMA, access counters) and the PEDF runtime's
/// dynamic state (FIFOs, scheduler, env-I/O cursors, counters).
#[derive(Debug, Clone)]
pub struct MachineState {
    pub platform: p2012::PlatformState,
    pub runtime: RuntimeState,
}

/// Capture the machine (memory content is tracked separately).
pub fn capture_machine(sys: &System) -> MachineState {
    MachineState {
        platform: sys.platform.capture_state(),
        runtime: sys.runtime.capture_state(),
    }
}

/// Restore a captured machine.
pub fn restore_machine(sys: &mut System, m: &MachineState) {
    sys.platform.restore_state(&m.platform);
    sys.runtime.restore_state(&m.runtime);
}

fn hash_machine_into(sys: &System, h: &mut Fnv64) {
    sys.platform.hash_state(h);
    sys.runtime.hash_state(h);
}

/// Hash of the complete system state, *including* full memory content.
/// This is the strong equality used by tests and the CI determinism gate;
/// boundary hashes inside the chain only cover dirty pages (cheap).
pub fn full_state_hash(sys: &System) -> u64 {
    use std::hash::Hasher;
    let mut h = Fnv64::new();
    hash_machine_into(sys, &mut h);
    sys.platform.mem.hash_full(&mut h);
    h.finish()
}

// ---- checkpoints -----------------------------------------------------------

/// One checkpoint: machine state + the pages dirtied since the previous
/// boundary + the chained hash at this boundary + a client payload (the
/// debugger stores its session-model snapshot there).
#[derive(Debug, Clone)]
pub struct Checkpoint<X> {
    pub id: u32,
    pub clock: u64,
    /// Chained boundary hash (see module docs).
    pub hash: u64,
    pub machine: MachineState,
    /// Sorted by [`PageId`]; content as of `clock`.
    pub pages: Vec<(PageId, Vec<Word>)>,
    pub payload: X,
}

/// Summary row for `info checkpoints`.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointInfo {
    pub id: u32,
    pub clock: u64,
    pub pages: usize,
    pub hash: u64,
}

/// The checkpoint chain plus divergence findings.
#[derive(Debug, Clone)]
pub struct CheckpointManager<X> {
    /// Auto-checkpoint interval in cycles.
    pub interval: u64,
    base: Option<MemImage>,
    checkpoints: Vec<Checkpoint<X>>,
    findings: Vec<Finding>,
    next_id: u32,
}

impl<X> CheckpointManager<X> {
    pub fn new(interval: u64) -> Self {
        assert!(interval >= 1, "checkpoint interval must be positive");
        CheckpointManager {
            interval,
            base: None,
            checkpoints: Vec::new(),
            findings: Vec::new(),
            next_id: 0,
        }
    }

    pub fn is_initialized(&self) -> bool {
        self.base.is_some()
    }

    /// Establish the baseline: full memory image, full-memory hash, reset
    /// dirty tracking. Becomes checkpoint 0 (with no delta pages).
    pub fn baseline(&mut self, sys: &mut System, payload: X) -> u32 {
        use std::hash::Hasher;
        let _ = sys.platform.mem.take_dirty();
        let mut h = Fnv64::new();
        hash_machine_into(sys, &mut h);
        sys.platform.mem.hash_full(&mut h);
        let id = self.next_id;
        self.next_id += 1;
        self.base = Some(sys.platform.mem.snapshot_full());
        self.checkpoints.push(Checkpoint {
            id,
            clock: sys.clock(),
            hash: h.finish(),
            machine: capture_machine(sys),
            pages: Vec::new(),
            payload,
        });
        id
    }

    pub fn checkpoints(&self) -> impl Iterator<Item = CheckpointInfo> + '_ {
        self.checkpoints.iter().map(|c| CheckpointInfo {
            id: c.id,
            clock: c.clock,
            pages: c.pages.len(),
            hash: c.hash,
        })
    }

    pub fn get(&self, id: u32) -> Option<&Checkpoint<X>> {
        self.checkpoints.iter().find(|c| c.id == id)
    }

    fn last_clock(&self) -> u64 {
        self.checkpoints.last().map_or(0, |c| c.clock)
    }

    /// Is there a recorded boundary at exactly this clock? (During replay
    /// the run loop verifies instead of re-creating.)
    pub fn has_checkpoint_at(&self, clock: u64) -> bool {
        self.checkpoints
            .binary_search_by_key(&clock, |c| c.clock)
            .is_ok()
    }

    /// Should the auto-policy create a checkpoint at this clock? (Only on
    /// first-run ground, i.e. past every recorded boundary.)
    pub fn creation_due(&self, clock: u64) -> bool {
        self.is_initialized() && clock >= self.last_clock() + self.interval
    }

    /// The latest checkpoint with `clock <= target`.
    pub fn nearest_at_or_before(&self, target: u64) -> Option<u32> {
        self.checkpoints
            .iter()
            .rev()
            .find(|c| c.clock <= target)
            .map(|c| c.id)
    }

    /// The latest checkpoint with `clock < target`.
    pub fn nearest_strictly_before(&self, target: u64) -> Option<u32> {
        self.checkpoints
            .iter()
            .rev()
            .find(|c| c.clock < target)
            .map(|c| c.id)
    }

    /// The chained hash over machine state + a dirty-page set.
    fn boundary_hash(prev: u64, sys: &System, pages: &[PageId]) -> u64 {
        use std::hash::Hasher;
        let mut h = Fnv64::chained(prev);
        hash_machine_into(sys, &mut h);
        for p in pages {
            h.write(format!("{p:?}").as_bytes());
            for w in sys.platform.mem.page_data(*p) {
                h.write_u32(*w);
            }
        }
        h.finish()
    }

    /// Record a new checkpoint at the current clock (first-run ground).
    pub fn checkpoint_at(&mut self, sys: &mut System, payload: X) -> u32 {
        debug_assert!(self.is_initialized(), "baseline() first");
        let dirty = sys.platform.mem.take_dirty();
        let prev = self.checkpoints.last().map_or(0, |c| c.hash);
        let hash = Self::boundary_hash(prev, sys, &dirty);
        let pages = dirty
            .into_iter()
            .map(|p| (p, sys.platform.mem.page_data(p).to_vec()))
            .collect();
        let id = self.next_id;
        self.next_id += 1;
        self.checkpoints.push(Checkpoint {
            id,
            clock: sys.clock(),
            hash,
            machine: capture_machine(sys),
            pages,
            payload,
        });
        id
    }

    /// A replayed execution reached a recorded boundary: recompute the
    /// chained hash from the replay's own dirty set and compare. On
    /// mismatch, record a `REPLAY501` finding naming the diverging cycle.
    /// Either way the dirty tracking resets, exactly as the original
    /// checkpoint creation did.
    pub fn verify_boundary(&mut self, sys: &mut System, clock: u64) {
        let Ok(idx) = self.checkpoints.binary_search_by_key(&clock, |c| c.clock) else {
            return;
        };
        let dirty = sys.platform.mem.take_dirty();
        if idx == 0 {
            // Baseline boundary: replays never land here (restores target
            // it directly), so there is nothing to verify.
            return;
        }
        let prev = self.checkpoints[idx - 1].hash;
        let replay_hash = Self::boundary_hash(prev, sys, &dirty);
        let expect = self.checkpoints[idx].hash;
        if replay_hash != expect {
            self.findings.push(Finding::new(
                RULE_DIVERGENCE,
                Severity::Error,
                format!("cycle {clock}"),
                format!(
                    "replay diverged from the recorded execution at checkpoint \
                     boundary {} (cycle {clock}): recorded hash {expect:#018x}, \
                     replayed hash {replay_hash:#018x} — a nondeterministic \
                     input reached the simulation",
                    self.checkpoints[idx].id
                ),
            ));
        }
    }

    /// Rewind the system to checkpoint `id`. Machine state is restored
    /// wholesale; memory is rewound page-wise (only pages written after
    /// the checkpoint are touched). Later checkpoints are kept so the
    /// subsequent replay verifies against them.
    pub fn restore(&self, sys: &mut System, id: u32) -> Option<&Checkpoint<X>> {
        let pos = self.checkpoints.iter().position(|c| c.id == id)?;
        let cp = &self.checkpoints[pos];
        let base = self.base.as_ref()?;

        // Pages possibly newer than the checkpoint: everything dirtied
        // since the last boundary, plus every page in later checkpoints.
        let mut affected = sys.platform.mem.take_dirty();
        for later in &self.checkpoints[pos + 1..] {
            affected.extend(later.pages.iter().map(|(p, _)| *p));
        }
        affected.sort_unstable();
        affected.dedup();

        for page in affected {
            // Content at cp.clock: the most recent delta at or before the
            // checkpoint, falling back to the baseline image.
            let mut data: Option<&[Word]> = None;
            for earlier in self.checkpoints[..=pos].iter().rev() {
                if let Ok(i) = earlier.pages.binary_search_by_key(&page, |(p, _)| *p) {
                    data = Some(&earlier.pages[i].1);
                    break;
                }
            }
            let data = data.unwrap_or_else(|| base.page_data(page));
            sys.platform.mem.restore_page(page, data);
        }

        restore_machine(sys, &cp.machine);
        // Restore writes bypass dirty marking, but be explicit: the replay
        // must regenerate the same dirty sets the original run did.
        debug_assert!(sys.platform.mem.take_dirty().is_empty());
        Some(cp)
    }

    /// Drop every checkpoint after `clock`: the debugger mutated history
    /// (token injection/alteration), so later boundaries describe a
    /// timeline that no longer exists. The baseline is always retained —
    /// without it no memory restore is possible.
    pub fn invalidate_after(&mut self, clock: u64) {
        let mut first = true;
        self.checkpoints.retain(|c| {
            let keep = first || c.clock <= clock;
            first = false;
            keep
        });
    }

    /// Divergence findings accumulated by [`Self::verify_boundary`].
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    pub fn clear_findings(&mut self) {
        self.findings.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use debuginfo::TypeTable;
    use p2012::memory::L2_BASE;

    #[test]
    fn divergence_rule_is_registered() {
        let r = debuginfo::registry::find(RULE_DIVERGENCE).expect("registered");
        assert_eq!(r.group, "REPLAY");
    }
    use p2012::{Insn, PeId, Platform, PlatformConfig, ProgramBuilder};
    use pedf::Runtime;

    /// A minimal system: one PE incrementing a counter in L2 forever.
    /// No dataflow graph — the runtime is a passive trap handler here.
    fn counter_system() -> System {
        let mut b = ProgramBuilder::new();
        let entry = b.begin_func(1);
        b.emit(Insn::Enter(1));
        let top = b.here();
        b.emit(Insn::LoadLocal(0));
        b.emit(Insn::LoadLocal(0));
        b.emit(Insn::LoadMem);
        b.emit(Insn::Const(1));
        b.emit(Insn::Add);
        b.emit(Insn::StoreMem);
        b.emit(Insn::Jump(top));
        let prog = b.finish();
        let mut platform = Platform::new(PlatformConfig::default());
        platform.load(prog);
        platform.invoke(PeId(0), entry, &[L2_BASE]);
        platform.invoke(PeId(1), entry, &[L2_BASE + 5000]);
        System::new(platform, Runtime::new(TypeTable::new()))
    }

    #[test]
    fn restore_and_replay_reproduce_the_exact_state() {
        let mut sys = counter_system();
        let mut mgr: CheckpointManager<()> = CheckpointManager::new(100);
        mgr.baseline(&mut sys, ());
        sys.run(100);
        let cp = mgr.checkpoint_at(&mut sys, ());
        sys.run(250);
        let final_hash = full_state_hash(&sys);
        let final_counter = sys.platform.mem.peek(L2_BASE).unwrap();

        // Rewind to the checkpoint: memory, PEs and clock all go back.
        mgr.restore(&mut sys, cp).expect("checkpoint exists");
        assert_eq!(sys.clock(), 100);
        assert!(sys.platform.mem.peek(L2_BASE).unwrap() < final_counter);

        // Replay the same 250 cycles: bit-identical outcome.
        sys.run(250);
        assert_eq!(full_state_hash(&sys), final_hash);
        assert_eq!(sys.platform.mem.peek(L2_BASE).unwrap(), final_counter);
    }

    #[test]
    fn restore_to_baseline_rewinds_everything() {
        let mut sys = counter_system();
        let mut mgr: CheckpointManager<()> = CheckpointManager::new(50);
        let h0 = full_state_hash(&sys);
        let base = mgr.baseline(&mut sys, ());
        sys.run(50);
        mgr.checkpoint_at(&mut sys, ());
        sys.run(75);
        mgr.restore(&mut sys, base).unwrap();
        assert_eq!(sys.clock(), 0);
        assert_eq!(full_state_hash(&sys), h0);
    }

    #[test]
    fn verify_boundary_accepts_faithful_replays() {
        let mut sys = counter_system();
        let mut mgr: CheckpointManager<()> = CheckpointManager::new(100);
        mgr.baseline(&mut sys, ());
        sys.run(100);
        let cp1 = mgr.checkpoint_at(&mut sys, ());
        sys.run(100);
        mgr.checkpoint_at(&mut sys, ());

        mgr.restore(&mut sys, cp1).unwrap();
        sys.run(100);
        mgr.verify_boundary(&mut sys, 200);
        assert!(mgr.findings().is_empty(), "{:?}", mgr.findings());
    }

    #[test]
    fn verify_boundary_catches_divergence() {
        let mut sys = counter_system();
        let mut mgr: CheckpointManager<()> = CheckpointManager::new(100);
        mgr.baseline(&mut sys, ());
        sys.run(100);
        let cp1 = mgr.checkpoint_at(&mut sys, ());
        sys.run(100);
        mgr.checkpoint_at(&mut sys, ());

        mgr.restore(&mut sys, cp1).unwrap();
        // Corrupt one word the program is working on: the replayed
        // execution now differs from the recorded one.
        sys.platform.mem.poke(L2_BASE, 424_242).unwrap();
        sys.run(100);
        mgr.verify_boundary(&mut sys, 200);
        let fs = mgr.findings();
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, RULE_DIVERGENCE);
        assert!(fs[0].message.contains("cycle 200"), "{}", fs[0].message);
    }

    #[test]
    fn nearest_queries_and_invalidation() {
        let mut sys = counter_system();
        let mut mgr: CheckpointManager<()> = CheckpointManager::new(10);
        let c0 = mgr.baseline(&mut sys, ());
        sys.run(10);
        let c1 = mgr.checkpoint_at(&mut sys, ());
        sys.run(10);
        let c2 = mgr.checkpoint_at(&mut sys, ());
        assert_eq!(mgr.nearest_at_or_before(20), Some(c2));
        assert_eq!(mgr.nearest_strictly_before(20), Some(c1));
        assert_eq!(mgr.nearest_strictly_before(1), Some(c0));
        assert_eq!(mgr.nearest_strictly_before(0), None);
        assert!(mgr.has_checkpoint_at(10));
        assert!(!mgr.has_checkpoint_at(11));
        assert!(mgr.creation_due(30));
        assert!(!mgr.creation_due(29));
        mgr.invalidate_after(10);
        assert_eq!(mgr.nearest_at_or_before(u64::MAX), Some(c1));
        assert_eq!(mgr.checkpoints().count(), 2);
    }

    #[test]
    fn fnv64_is_stable_across_runs() {
        use std::hash::Hasher;
        let mut h = Fnv64::new();
        h.write(b"determinism");
        // Pinned: this value must never change between releases, or CI
        // hash comparisons across binaries break.
        assert_eq!(h.finish(), 0x3100_2e8e_b74a_e062);
        let mut a = Fnv64::new();
        let mut b = Fnv64::new();
        a.write(b"xyz");
        b.write(b"xyz");
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv64::chained(a.finish());
        let mut d = Fnv64::chained(b.finish());
        c.write_u32(7);
        d.write_u32(7);
        assert_eq!(c.finish(), d.finish());
        d.write_u32(8);
        assert_ne!(c.finish(), d.finish());
    }
}
