//! The application structure: actors, connections and links.
//!
//! PEDF defines three entity classes (§IV): **filters** (computing actors),
//! **controllers** (one per module, scheduling the module's filters) and
//! **modules** (a sub-graph of filters plus a controller, hierarchically
//! composable). Actors expose named, typed **connections** (ports); a
//! **link** binds an output connection to an input connection and carries
//! the token FIFO.
//!
//! An [`AppGraph`] is built incrementally through the same registration
//! calls the framework makes at boot (`pedf_register_*`), which is exactly
//! how both the runtime *and* the paper's debugger learn the structure — the
//! debugger reconstructs its own copy by breakpointing those calls
//! (Contribution #1), so this type is shared by the `pedf` and `dfdbg`
//! crates.

use debuginfo::{CodeAddr, TypeId};
use p2012::PeId;

/// Actor index within an [`AppGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub u32);

/// Connection (port) index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u32);

/// Link index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// PEDF entity class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActorKind {
    Filter,
    Controller,
    Module,
}

impl ActorKind {
    pub fn name(self) -> &'static str {
        match self {
            ActorKind::Filter => "filter",
            ActorKind::Controller => "controller",
            ActorKind::Module => "module",
        }
    }

    pub fn from_code(code: u32) -> Option<ActorKind> {
        match code {
            0 => Some(ActorKind::Filter),
            1 => Some(ActorKind::Controller),
            2 => Some(ActorKind::Module),
            _ => None,
        }
    }

    pub fn code(self) -> u32 {
        match self {
            ActorKind::Filter => 0,
            ActorKind::Controller => 1,
            ActorKind::Module => 2,
        }
    }
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    In,
    Out,
}

impl Dir {
    pub fn from_code(code: u32) -> Option<Dir> {
        match code {
            0 => Some(Dir::In),
            1 => Some(Dir::Out),
            _ => None,
        }
    }

    pub fn code(self) -> u32 {
        match self {
            Dir::In => 0,
            Dir::Out => 1,
        }
    }
}

/// Visual/transport class of a link, matching the three arrow styles of
/// Fig. 4: plain data links between filters, control links from
/// controllers, and DMA-assisted control links crossing the host boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkClass {
    Data,
    Control,
    DmaControl,
}

impl LinkClass {
    pub fn from_code(code: u32) -> Option<LinkClass> {
        match code {
            0 => Some(LinkClass::Data),
            1 => Some(LinkClass::Control),
            2 => Some(LinkClass::DmaControl),
            _ => None,
        }
    }

    pub fn code(self) -> u32 {
        match self {
            LinkClass::Data => 0,
            LinkClass::Control => 1,
            LinkClass::DmaControl => 2,
        }
    }
}

/// One actor (filter, controller or module).
#[derive(Debug, Clone)]
pub struct Actor {
    pub id: ActorId,
    /// Short name inside its module, e.g. `ipf`.
    pub name: String,
    pub kind: ActorKind,
    /// Enclosing module, `None` for top-level modules.
    pub parent: Option<ActorId>,
    pub inputs: Vec<ConnId>,
    pub outputs: Vec<ConnId>,
    /// Processing element executing this actor (filters/controllers).
    pub pe: Option<PeId>,
    /// Entry address of the WORK method (filters/controllers).
    pub work_addr: Option<CodeAddr>,
}

impl Actor {
    /// All connections, inputs first.
    pub fn conns(&self) -> impl Iterator<Item = ConnId> + '_ {
        self.inputs.iter().chain(self.outputs.iter()).copied()
    }
}

/// One named, typed port of an actor.
#[derive(Debug, Clone)]
pub struct Connection {
    pub id: ConnId,
    pub actor: ActorId,
    /// Port name, e.g. `Add2Dblock_ipf_out`.
    pub name: String,
    pub dir: Dir,
    pub ty: TypeId,
    /// Bound link, once `register_link` ran.
    pub link: Option<LinkId>,
}

/// A bound pair of connections carrying a FIFO of tokens.
#[derive(Debug, Clone)]
pub struct Link {
    pub id: LinkId,
    /// Producer-side (output) connection.
    pub from: ConnId,
    /// Consumer-side (input) connection.
    pub to: ConnId,
    /// FIFO capacity in tokens.
    pub capacity: u32,
    pub class: LinkClass,
    /// Base address of the FIFO storage in simulated memory.
    pub fifo_base: u32,
}

/// Errors raised by graph registration — these surface as runtime faults at
/// boot, mirroring the framework's own consistency checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    DuplicateActorName { name: String },
    UnknownActor { id: u32 },
    UnknownConn { id: u32 },
    DirectionMismatch { from: ConnId, to: ConnId },
    TypeMismatch { from: ConnId, to: ConnId },
    AlreadyBound { conn: ConnId },
    NonContiguousId { expected: u32, got: u32 },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::DuplicateActorName { name } => {
                write!(f, "duplicate actor name `{name}`")
            }
            GraphError::UnknownActor { id } => write!(f, "unknown actor #{id}"),
            GraphError::UnknownConn { id } => {
                write!(f, "unknown connection #{id}")
            }
            GraphError::DirectionMismatch { from, to } => write!(
                f,
                "link must go out->in (got conn #{} -> conn #{})",
                from.0, to.0
            ),
            GraphError::TypeMismatch { from, to } => write!(
                f,
                "token type mismatch across link (conn #{} -> conn #{})",
                from.0, to.0
            ),
            GraphError::AlreadyBound { conn } => {
                write!(f, "connection #{} bound twice", conn.0)
            }
            GraphError::NonContiguousId { expected, got } => write!(
                f,
                "registration ids must be contiguous (expected {expected}, got {got})"
            ),
        }
    }
}

/// The reconstructed application graph.
#[derive(Debug, Clone, Default)]
pub struct AppGraph {
    pub actors: Vec<Actor>,
    pub conns: Vec<Connection>,
    pub links: Vec<Link>,
}

impl AppGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an actor. Ids must arrive contiguously (the boot code emits
    /// them in order; the debugger relies on the same discipline).
    #[allow(clippy::too_many_arguments)]
    pub fn register_actor(
        &mut self,
        id: u32,
        name: &str,
        kind: ActorKind,
        parent: Option<ActorId>,
        pe: Option<PeId>,
        work_addr: Option<CodeAddr>,
    ) -> Result<ActorId, GraphError> {
        if id != self.actors.len() as u32 {
            return Err(GraphError::NonContiguousId {
                expected: self.actors.len() as u32,
                got: id,
            });
        }
        if let Some(parent) = parent {
            if parent.0 as usize >= self.actors.len() {
                return Err(GraphError::UnknownActor { id: parent.0 });
            }
        }
        if self
            .actors
            .iter()
            .any(|a| a.name == name && a.parent == parent)
        {
            return Err(GraphError::DuplicateActorName {
                name: name.to_string(),
            });
        }
        let aid = ActorId(id);
        self.actors.push(Actor {
            id: aid,
            name: name.to_string(),
            kind,
            parent,
            inputs: Vec::new(),
            outputs: Vec::new(),
            pe,
            work_addr,
        });
        Ok(aid)
    }

    pub fn register_conn(
        &mut self,
        id: u32,
        actor: ActorId,
        name: &str,
        dir: Dir,
        ty: TypeId,
    ) -> Result<ConnId, GraphError> {
        if id != self.conns.len() as u32 {
            return Err(GraphError::NonContiguousId {
                expected: self.conns.len() as u32,
                got: id,
            });
        }
        let a = self
            .actors
            .get_mut(actor.0 as usize)
            .ok_or(GraphError::UnknownActor { id: actor.0 })?;
        let cid = ConnId(id);
        match dir {
            Dir::In => a.inputs.push(cid),
            Dir::Out => a.outputs.push(cid),
        }
        self.conns.push(Connection {
            id: cid,
            actor,
            name: name.to_string(),
            dir,
            ty,
            link: None,
        });
        Ok(cid)
    }

    pub fn register_link(
        &mut self,
        id: u32,
        from: ConnId,
        to: ConnId,
        capacity: u32,
        class: LinkClass,
        fifo_base: u32,
    ) -> Result<LinkId, GraphError> {
        if id != self.links.len() as u32 {
            return Err(GraphError::NonContiguousId {
                expected: self.links.len() as u32,
                got: id,
            });
        }
        let fc = self
            .conns
            .get(from.0 as usize)
            .ok_or(GraphError::UnknownConn { id: from.0 })?;
        let tc = self
            .conns
            .get(to.0 as usize)
            .ok_or(GraphError::UnknownConn { id: to.0 })?;
        // Normal links go out -> in. Module boundary conns act as
        // pass-throughs: a module *input* feeds inner filters (producer
        // side), a module *output* is fed by them (consumer side). This is
        // the paper's `binds this.module_in to filter_1.an_input`.
        let from_ok = fc.dir == Dir::Out
            || (self.actor(fc.actor).kind == ActorKind::Module && fc.dir == Dir::In);
        let to_ok = tc.dir == Dir::In
            || (self.actor(tc.actor).kind == ActorKind::Module && tc.dir == Dir::Out);
        if !from_ok || !to_ok {
            return Err(GraphError::DirectionMismatch { from, to });
        }
        if fc.ty != tc.ty {
            return Err(GraphError::TypeMismatch { from, to });
        }
        if fc.link.is_some() {
            return Err(GraphError::AlreadyBound { conn: from });
        }
        if tc.link.is_some() {
            return Err(GraphError::AlreadyBound { conn: to });
        }
        let lid = LinkId(id);
        self.conns[from.0 as usize].link = Some(lid);
        self.conns[to.0 as usize].link = Some(lid);
        self.links.push(Link {
            id: lid,
            from,
            to,
            capacity,
            class,
            fifo_base,
        });
        Ok(lid)
    }

    pub fn actor(&self, id: ActorId) -> &Actor {
        &self.actors[id.0 as usize]
    }

    pub fn conn(&self, id: ConnId) -> &Connection {
        &self.conns[id.0 as usize]
    }

    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Fully-qualified actor name, e.g. `pred.ipf`.
    pub fn qualified_name(&self, id: ActorId) -> String {
        let a = self.actor(id);
        match a.parent {
            Some(p) => format!("{}.{}", self.qualified_name(p), a.name),
            None => a.name.clone(),
        }
    }

    /// Find an actor by short name (unique short names are the common case
    /// in the paper's sessions: `filter pipe catch work`). Falls back to
    /// qualified-name match.
    pub fn actor_by_name(&self, name: &str) -> Option<&Actor> {
        self.actors.iter().find(|a| a.name == name).or_else(|| {
            self.actors
                .iter()
                .find(|a| self.qualified_name(a.id) == name)
        })
    }

    /// Resolve `actor::conn` or `conn` within a given actor.
    pub fn conn_by_name(&self, actor: ActorId, name: &str) -> Option<&Connection> {
        self.actor(actor)
            .conns()
            .map(|c| self.conn(c))
            .find(|c| c.name == name)
    }

    /// Actors directly contained in `module`.
    pub fn children(&self, module: ActorId) -> impl Iterator<Item = &Actor> {
        self.actors.iter().filter(move |a| a.parent == Some(module))
    }

    /// The controller of `module`, if registered.
    pub fn controller_of(&self, module: ActorId) -> Option<&Actor> {
        self.children(module)
            .find(|a| a.kind == ActorKind::Controller)
    }

    /// Top-level modules.
    pub fn modules(&self) -> impl Iterator<Item = &Actor> {
        self.actors.iter().filter(|a| a.kind == ActorKind::Module)
    }

    /// All filters (any depth).
    pub fn filters(&self) -> impl Iterator<Item = &Actor> {
        self.actors.iter().filter(|a| a.kind == ActorKind::Filter)
    }

    /// The producing/consuming actors of a link, for displays like
    /// `pipe -> ipf`.
    pub fn link_ends(&self, id: LinkId) -> (ActorId, ActorId) {
        let l = self.link(id);
        (self.conn(l.from).actor, self.conn(l.to).actor)
    }

    /// Token-carrying links only (the edges SDF rate analysis runs over);
    /// control and DMA-control links schedule, they don't stream.
    pub fn data_links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter().filter(|l| l.class == LinkClass::Data)
    }

    /// Connections not bound to any link. On filters and controllers these
    /// are genuinely dangling ports; on modules they are the flattened
    /// boundary aliases the elaborator leaves unlinked by design.
    pub fn unbound_conns(&self) -> impl Iterator<Item = &Connection> {
        self.conns.iter().filter(|c| c.link.is_none())
    }

    /// Human-readable link label: `pipe::out_x -> ipf::in_y`.
    pub fn link_label(&self, id: LinkId) -> String {
        let l = self.link(id);
        let (fa, ta) = self.link_ends(id);
        format!(
            "{}::{} -> {}::{}",
            self.actor(fa).name,
            self.conn(l.from).name,
            self.actor(ta).name,
            self.conn(l.to).name
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use debuginfo::TypeTable;

    fn simple_graph() -> AppGraph {
        // AModule from §IV-A: a module with a controller and two filters.
        let mut g = AppGraph::new();
        let m = g
            .register_actor(0, "a_module", ActorKind::Module, None, None, None)
            .unwrap();
        let ctrl = g
            .register_actor(
                1,
                "controller",
                ActorKind::Controller,
                Some(m),
                Some(PeId(0)),
                Some(100),
            )
            .unwrap();
        let f1 = g
            .register_actor(
                2,
                "filter_1",
                ActorKind::Filter,
                Some(m),
                Some(PeId(1)),
                Some(200),
            )
            .unwrap();
        let f2 = g
            .register_actor(
                3,
                "filter_2",
                ActorKind::Filter,
                Some(m),
                Some(PeId(2)),
                Some(300),
            )
            .unwrap();
        let out = g
            .register_conn(0, f1, "an_output", Dir::Out, TypeTable::U32)
            .unwrap();
        let inp = g
            .register_conn(1, f2, "an_input", Dir::In, TypeTable::U32)
            .unwrap();
        let _ = g
            .register_conn(2, ctrl, "cmd_out_1", Dir::Out, TypeTable::U8)
            .unwrap();
        let _ = g
            .register_conn(3, f1, "cmd_in", Dir::In, TypeTable::U8)
            .unwrap();
        g.register_link(0, out, inp, 16, LinkClass::Data, 0x1000_0100)
            .unwrap();
        g.register_link(1, ConnId(2), ConnId(3), 4, LinkClass::Control, 0x1000_0200)
            .unwrap();
        g
    }

    #[test]
    fn builds_and_navigates() {
        let g = simple_graph();
        assert_eq!(g.actors.len(), 4);
        let f2 = g.actor_by_name("filter_2").unwrap();
        assert_eq!(f2.inputs.len(), 1);
        assert_eq!(g.qualified_name(f2.id), "a_module.filter_2");
        assert_eq!(g.controller_of(ActorId(0)).unwrap().name, "controller");
        assert_eq!(g.children(ActorId(0)).count(), 3);
        assert_eq!(
            g.link_label(LinkId(0)),
            "filter_1::an_output -> filter_2::an_input"
        );
        assert_eq!(g.filters().count(), 2);
        assert_eq!(g.modules().count(), 1);
    }

    #[test]
    fn rejects_bad_links() {
        let mut g = simple_graph();
        // in -> in
        assert_eq!(
            g.register_link(2, ConnId(1), ConnId(1), 4, LinkClass::Data, 0),
            Err(GraphError::DirectionMismatch {
                from: ConnId(1),
                to: ConnId(1)
            })
        );
        // type mismatch: U32 out -> U8 in
        assert_eq!(
            g.register_link(2, ConnId(0), ConnId(3), 4, LinkClass::Data, 0),
            Err(GraphError::TypeMismatch {
                from: ConnId(0),
                to: ConnId(3)
            })
        );
        // double bind
        assert_eq!(
            g.register_link(2, ConnId(0), ConnId(1), 4, LinkClass::Data, 0),
            Err(GraphError::AlreadyBound { conn: ConnId(0) })
        );
    }

    #[test]
    fn rejects_inconsistent_registration() {
        let mut g = AppGraph::new();
        assert!(matches!(
            g.register_actor(5, "x", ActorKind::Filter, None, None, None),
            Err(GraphError::NonContiguousId { .. })
        ));
        g.register_actor(0, "x", ActorKind::Module, None, None, None)
            .unwrap();
        assert!(matches!(
            g.register_actor(1, "x", ActorKind::Module, None, None, None),
            Err(GraphError::DuplicateActorName { .. })
        ));
        // Same short name under different parents is fine.
        let m = ActorId(0);
        g.register_actor(1, "y", ActorKind::Module, None, None, None)
            .unwrap();
        g.register_actor(2, "x", ActorKind::Filter, Some(m), None, None)
            .unwrap();
    }

    #[test]
    fn conn_lookup_by_name() {
        let g = simple_graph();
        let f1 = g.actor_by_name("filter_1").unwrap().id;
        assert!(g.conn_by_name(f1, "an_output").is_some());
        assert!(g.conn_by_name(f1, "nope").is_none());
    }
}
