//! The PEDF runtime system: scheduling, token transport and boot.
//!
//! This is the framework's "runtime" box in Fig. 3: it services every
//! `pedf_*` trap raised by application bytecode, owns the dynamic state of
//! the dataflow graph (FIFO counters, per-step read windows, filter
//! scheduling states) and drives environment sources/sinks once per cycle.
//!
//! ## Execution model (§IV-B)
//!
//! Filters run *step-based*: one WORK invocation processes one step.
//! A controller calls `ACTOR_START(f)` to schedule `f`; the runtime invokes
//! `f`'s WORK on its processing element as soon as that PE is idle. Without
//! a sync request the filter free-runs (WORK is re-invoked on completion).
//! `ACTOR_SYNC(f)` asks `f` to stop at the end of its current step;
//! `WAIT_FOR_ACTOR_INIT`/`WAIT_FOR_ACTOR_SYNC` block the controller until
//! all started filters have begun / all synced filters have stopped.
//! `ACTOR_FIRE` merges START and SYNC: exactly one step.
//!
//! ## Structure-model I/O (§IV-C)
//!
//! `pedf.io.in[n]` reads the *n-th token of the current step*: the runtime
//! pops tokens from the link into a per-connection window on demand
//! (blocking while the link is starved) and serves repeated reads from the
//! window. Writes must be sequential (`out[k]` with `k` equal to the number
//! already written this step) and push immediately — these eager pop/push
//! points are precisely the events the paper's debugger intercepts.

use std::collections::HashMap;

use debuginfo::{TypeTable, Value, Word};
use p2012::{BlockReason, PeId, PeState, PeStatus, TrapCtx, TrapHandler, TrapResult};

use crate::api::{self, traps};
use crate::envio::{EnvSink, EnvSource};
use crate::events::{EventBuffer, RuntimeEvent};
use crate::fifo::FifoState;
use crate::graph::{ActorId, ActorKind, AppGraph, ConnId, Dir, LinkId};
use crate::policy::{ChoiceKind, SchedulePolicy, DELAYS};

/// Scheduling state of a filter within the current step, phrased like the
/// paper's scheduling monitor: "ready to be executed, not scheduled, or
/// have already finished the step" (Contribution #2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FilterSched {
    #[default]
    NotScheduled,
    /// START issued, WORK not yet running (PE was busy).
    Scheduled,
    Running,
    /// Reached the requested sync point; idle until re-started.
    Synced,
}

impl FilterSched {
    pub fn label(self) -> &'static str {
        match self {
            FilterSched::NotScheduled => "not scheduled",
            FilterSched::Scheduled => "ready",
            FilterSched::Running => "running",
            FilterSched::Synced => "finished step",
        }
    }
}

#[derive(Debug, Clone, Default)]
struct ActorRt {
    sched: FilterSched,
    started: bool,
    begun: bool,
    sync_requested: bool,
    steps_done: u64,
    /// Earliest cycle a `Scheduled` filter may begin WORK; 0 (the
    /// default) means "as soon as the PE is idle". Set by a non-default
    /// [`SchedulePolicy`] choice to defer an election.
    defer_until: u64,
}

#[derive(Debug, Clone, Default)]
struct ConnRt {
    /// Flattened tokens popped into this step's read window (inputs).
    window: Vec<Word>,
    window_tokens: u32,
    /// Tokens written this step (outputs).
    written: u32,
}

#[derive(Debug, Clone, Default)]
struct ModuleRt {
    steps: u64,
    stop: bool,
    max_steps: Option<u64>,
}

/// Aggregate counters for benchmarks and reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuntimeStats {
    pub tokens_pushed: u64,
    pub tokens_popped: u64,
    pub work_invocations: u64,
}

/// Opaque snapshot of the runtime's dynamic state, for checkpoint/replay.
/// The static parts (graph, type table, PE↔actor mapping) are excluded:
/// checkpoints are only taken after boot, when those no longer change.
#[derive(Debug, Clone)]
pub struct RuntimeState {
    actors_rt: Vec<ActorRt>,
    conns_rt: Vec<ConnRt>,
    fifos: Vec<FifoState>,
    modules_rt: Vec<ModuleRt>,
    booted: bool,
    console: Vec<String>,
    events: EventBuffer,
    protocol_errors: Vec<String>,
    stats: RuntimeStats,
    sources: Vec<crate::envio::EnvSourceState>,
    sinks: Vec<crate::envio::EnvSinkState>,
    policy: SchedulePolicy,
}

/// The runtime system. Implements [`TrapHandler`]; owns all dynamic
/// dataflow state.
///
/// `Clone` is deliberate: every field is plain data (env sources/sinks
/// included), so session forking can duplicate the whole runtime in one
/// deep copy instead of re-running boot + environment setup.
#[derive(Debug, Clone)]
pub struct Runtime {
    /// Shared type table (same ids as the image's debug info).
    pub types: TypeTable,
    /// The registered application graph.
    pub graph: AppGraph,
    actors_rt: Vec<ActorRt>,
    conns_rt: Vec<ConnRt>,
    /// FIFO state per link (parallel to `graph.links`).
    pub fifos: Vec<FifoState>,
    modules_rt: Vec<ModuleRt>,
    pe_actor: HashMap<PeId, ActorId>,
    pub booted: bool,
    /// Output of `pedf_print` (the application's console).
    pub console: Vec<String>,
    /// Direct event stream (framework-cooperation ablation; disabled by
    /// default so the baseline stays clean).
    pub events: EventBuffer,
    /// Human-readable details for trap-level protocol faults.
    pub protocol_errors: Vec<String>,
    sources: Vec<EnvSource>,
    sinks: Vec<EnvSink>,
    pub stats: RuntimeStats,
    /// The scheduler-choice seam: answers every election with code 0 by
    /// default (today's deterministic order) unless overrides are
    /// installed. Machine state — captured, restored and hashed with the
    /// rest of the runtime so replay from a checkpoint re-consumes the
    /// same decision indices.
    pub policy: SchedulePolicy,
    pop_buf: Vec<Word>,
}

impl Runtime {
    pub fn new(types: TypeTable) -> Self {
        Runtime {
            types,
            graph: AppGraph::new(),
            actors_rt: Vec::new(),
            conns_rt: Vec::new(),
            fifos: Vec::new(),
            modules_rt: Vec::new(),
            pe_actor: HashMap::new(),
            booted: false,
            console: Vec::new(),
            events: EventBuffer::default(),
            protocol_errors: Vec::new(),
            sources: Vec::new(),
            sinks: Vec::new(),
            stats: RuntimeStats::default(),
            policy: SchedulePolicy::default(),
            pop_buf: Vec::new(),
        }
    }

    fn fail(&mut self, detail: String, short: &'static str) -> TrapResult {
        self.protocol_errors.push(detail);
        TrapResult::Fault(short)
    }

    fn token_words(&self, conn: ConnId) -> u32 {
        self.types.size_words(self.graph.conn(conn).ty)
    }

    // ---- registration ----------------------------------------------------

    fn do_register_actor(&mut self, ctx: &mut TrapCtx<'_>, args: &[Word]) -> TrapResult {
        let [id, kind, parent1, name_addr, name_len, pe1, work1] = args else {
            return TrapResult::Fault("register_actor arity");
        };
        let Some(kind) = ActorKind::from_code(*kind) else {
            return self.fail(format!("register_actor: bad kind {kind}"), "bad actor kind");
        };
        let Some(name) = api::read_string(ctx.mem, *name_addr, *name_len) else {
            return self.fail(
                "register_actor: unreadable name".into(),
                "unreadable actor name",
            );
        };
        let parent = api::decode_opt(*parent1).map(ActorId);
        let pe = api::decode_opt(*pe1).map(|p| PeId(p as u16));
        let work = api::decode_opt(*work1);
        match self
            .graph
            .register_actor(*id, &name, kind, parent, pe, work)
        {
            Ok(aid) => {
                self.actors_rt.push(ActorRt::default());
                // May already exist if limits were configured pre-boot.
                if self.modules_rt.len() <= aid.0 as usize {
                    self.modules_rt
                        .resize_with(aid.0 as usize + 1, ModuleRt::default);
                }
                if let Some(pe) = pe {
                    self.pe_actor.insert(pe, aid);
                }
                self.events
                    .push(|| RuntimeEvent::ActorRegistered { actor: aid });
                TrapResult::Done
            }
            Err(e) => self.fail(format!("register_actor: {e}"), "graph registration"),
        }
    }

    fn do_register_conn(&mut self, ctx: &mut TrapCtx<'_>, args: &[Word]) -> TrapResult {
        let [id, actor, dir, ty, name_addr, name_len] = args else {
            return TrapResult::Fault("register_conn arity");
        };
        let Some(dir) = Dir::from_code(*dir) else {
            return self.fail(format!("register_conn: bad dir {dir}"), "bad direction");
        };
        let Some(name) = api::read_string(ctx.mem, *name_addr, *name_len) else {
            return self.fail(
                "register_conn: unreadable name".into(),
                "unreadable conn name",
            );
        };
        if *ty as usize >= self.types.len() {
            return self.fail(format!("register_conn: bad type {ty}"), "bad type id");
        }
        match self
            .graph
            .register_conn(*id, ActorId(*actor), &name, dir, debuginfo::TypeId(*ty))
        {
            Ok(_) => {
                self.conns_rt.push(ConnRt::default());
                TrapResult::Done
            }
            Err(e) => self.fail(format!("register_conn: {e}"), "graph registration"),
        }
    }

    fn do_register_link(&mut self, args: &[Word]) -> TrapResult {
        let [id, from, to, capacity, class, fifo_base] = args else {
            return TrapResult::Fault("register_link arity");
        };
        let Some(class) = crate::graph::LinkClass::from_code(*class) else {
            return self.fail(format!("register_link: bad class {class}"), "bad class");
        };
        match self.graph.register_link(
            *id,
            ConnId(*from),
            ConnId(*to),
            *capacity,
            class,
            *fifo_base,
        ) {
            Ok(lid) => {
                let tw = self.token_words(ConnId(*from));
                self.fifos.push(FifoState::new(*fifo_base, *capacity, tw));
                self.events
                    .push(|| RuntimeEvent::LinkRegistered { link: lid });
                TrapResult::Done
            }
            Err(e) => self.fail(format!("register_link: {e}"), "graph registration"),
        }
    }

    fn do_boot_complete(&mut self, ctx: &mut TrapCtx<'_>) -> TrapResult {
        if self.booted {
            return self.fail("boot_complete twice".into(), "double boot");
        }
        self.booted = true;
        // Launch every controller on its processing element.
        let controllers: Vec<(ActorId, PeId, u32)> = self
            .graph
            .actors
            .iter()
            .filter(|a| a.kind == ActorKind::Controller)
            .filter_map(|a| Some((a.id, a.pe?, a.work_addr?)))
            .collect();
        for (actor, pe, work) in controllers {
            if !matches!(ctx.pe(pe).status, PeStatus::Idle) {
                return self.fail(
                    format!("controller {} PE busy at boot", actor.0),
                    "controller PE busy",
                );
            }
            ctx.invoke(pe, work, &[]);
            self.actors_rt[actor.0 as usize].sched = FilterSched::Running;
            self.actors_rt[actor.0 as usize].begun = true;
        }
        self.events.push(|| RuntimeEvent::BootComplete);
        TrapResult::Done
    }

    // ---- token transport ---------------------------------------------------

    /// Push `words` through output connection `conn`; shared by the scalar
    /// and struct push traps. `idx` enforces sequential writes.
    fn push_words(
        &mut self,
        ctx: &mut TrapCtx<'_>,
        current: &mut PeState,
        conn: ConnId,
        idx: Word,
        words: &[Word],
    ) -> TrapResult {
        let Some(c) = self.graph.conns.get(conn.0 as usize) else {
            return self.fail(format!("push: bad conn {}", conn.0), "bad conn");
        };
        if c.dir != Dir::Out {
            return self.fail(
                format!("push on input connection {}", c.name),
                "push on input",
            );
        }
        let Some(link) = c.link else {
            return self.fail(format!("push on unbound conn {}", c.name), "unbound");
        };
        let ty = c.ty;
        let rt_written = self.conns_rt[conn.0 as usize].written;
        if idx != rt_written {
            return self.fail(
                format!(
                    "out-of-order write on {} (index {idx}, expected {rt_written})",
                    c.name
                ),
                "out-of-order write",
            );
        }
        let fifo = &mut self.fifos[link.0 as usize];
        match fifo.push(ctx.mem, words) {
            Ok(Some((index, stall))) => {
                current.stall += stall;
                self.conns_rt[conn.0 as usize].written += 1;
                self.stats.tokens_pushed += 1;
                self.events.push(|| RuntimeEvent::TokenPushed {
                    conn,
                    link,
                    index,
                    value: Value::record(ty, words.to_vec()),
                });
                TrapResult::Done
            }
            Ok(None) => TrapResult::Block(BlockReason::SpaceWait { link: link.0 }),
            Err(e) => self.fail(format!("push: {e}"), "fifo memory fault"),
        }
    }

    /// Ensure the read window of `conn` holds at least `idx + 1` tokens,
    /// popping from the link as needed. Returns the flattened window offset
    /// of token `idx`, or a blocking result.
    fn fill_window(
        &mut self,
        ctx: &mut TrapCtx<'_>,
        current: &mut PeState,
        conn: ConnId,
        idx: Word,
    ) -> Result<usize, TrapResult> {
        let Some(c) = self.graph.conns.get(conn.0 as usize) else {
            return Err(self.fail(format!("pop: bad conn {}", conn.0), "bad conn"));
        };
        if c.dir != Dir::In {
            return Err(self.fail(
                format!("pop on output connection {}", c.name),
                "pop on output",
            ));
        }
        let Some(link) = c.link else {
            return Err(self.fail(format!("pop on unbound conn {}", c.name), "unbound"));
        };
        let ty = c.ty;
        let tw = self.types.size_words(ty) as usize;
        while self.conns_rt[conn.0 as usize].window_tokens <= idx {
            self.pop_buf.clear();
            let fifo = &mut self.fifos[link.0 as usize];
            match fifo.pop(ctx.mem, &mut self.pop_buf) {
                Ok(Some((index, stall))) => {
                    current.stall += stall;
                    let rt = &mut self.conns_rt[conn.0 as usize];
                    rt.window.extend_from_slice(&self.pop_buf);
                    rt.window_tokens += 1;
                    self.stats.tokens_popped += 1;
                    let words = self.pop_buf.clone();
                    self.events.push(|| RuntimeEvent::TokenPopped {
                        conn,
                        link,
                        index,
                        value: Value::record(ty, words),
                    });
                }
                Ok(None) => return Err(TrapResult::Block(BlockReason::TokenWait { link: link.0 })),
                Err(e) => return Err(self.fail(format!("pop: {e}"), "fifo memory fault")),
            }
        }
        Ok(idx as usize * tw)
    }

    // ---- scheduling ------------------------------------------------------

    fn filter_of(&mut self, id: Word) -> Result<ActorId, TrapResult> {
        match self.graph.actors.get(id as usize) {
            Some(a) if a.kind == ActorKind::Filter => Ok(a.id),
            Some(a) => Err(self.fail(
                format!("scheduling call on non-filter `{}`", a.name),
                "not a filter",
            )),
            None => Err(self.fail(format!("scheduling call on bad actor {id}"), "bad actor")),
        }
    }

    fn do_actor_start(&mut self, ctx: &mut TrapCtx<'_>, actor: ActorId) -> TrapResult {
        let a = self.graph.actor(actor);
        let (Some(pe), Some(work)) = (a.pe, a.work_addr) else {
            return self.fail(
                format!("START on unmapped filter `{}`", a.name),
                "unmapped filter",
            );
        };
        let rt = &mut self.actors_rt[actor.0 as usize];
        rt.started = true;
        self.events.push(|| RuntimeEvent::ActorStarted { actor });
        if matches!(rt.sched, FilterSched::Running) {
            // Free-running from a previous step; nothing more to do.
            return TrapResult::Done;
        }
        if matches!(ctx.pe(pe).status, PeStatus::Idle) {
            // An election: the runtime *may* begin WORK now, or lawfully
            // defer it. The policy's default answer (code 0) starts
            // immediately — byte-identical to the historical behaviour.
            let code = self
                .policy
                .decide(ChoiceKind::ActorStart, actor.0, ctx.clock);
            let delay = DELAYS[code as usize % DELAYS.len()];
            let rt = &mut self.actors_rt[actor.0 as usize];
            if delay == 0 {
                ctx.invoke(pe, work, &[]);
                rt.begun = true;
                rt.sched = FilterSched::Running;
                self.stats.work_invocations += 1;
                self.events.push(|| RuntimeEvent::WorkBegun { actor });
            } else {
                rt.begun = false;
                rt.sched = FilterSched::Scheduled;
                rt.defer_until = ctx.clock + delay;
            }
        } else {
            let rt = &mut self.actors_rt[actor.0 as usize];
            rt.begun = false;
            rt.sched = FilterSched::Scheduled;
        }
        TrapResult::Done
    }

    fn do_actor_sync(&mut self, actor: ActorId) -> TrapResult {
        let rt = &mut self.actors_rt[actor.0 as usize];
        rt.sync_requested = true;
        if !rt.started && rt.sched == FilterSched::NotScheduled {
            // Vacuous sync on a filter that never ran this step.
            rt.sched = FilterSched::Synced;
        }
        self.events
            .push(|| RuntimeEvent::ActorSyncRequested { actor });
        TrapResult::Done
    }

    /// The module whose controller is executing on `pe`.
    fn controller_module(&mut self, pe: PeId) -> Result<ActorId, TrapResult> {
        let Some(&actor) = self.pe_actor.get(&pe) else {
            return Err(self.fail(
                format!("controller call from unmapped {pe}"),
                "not a controller",
            ));
        };
        let a = self.graph.actor(actor);
        if a.kind != ActorKind::Controller {
            return Err(self.fail(
                format!("controller call from non-controller `{}`", a.name),
                "not a controller",
            ));
        }
        a.parent.ok_or_else(|| {
            self.fail(
                "controller without module".into(),
                "controller without module",
            )
        })
    }

    fn module_filters(&self, module: ActorId) -> Vec<ActorId> {
        self.graph
            .children(module)
            .filter(|a| a.kind == ActorKind::Filter)
            .map(|a| a.id)
            .collect()
    }

    // ---- trap servicing entry point ---------------------------------------

    fn service(
        &mut self,
        ctx: &mut TrapCtx<'_>,
        pe: PeId,
        current: &mut PeState,
        id: u16,
        args: &[Word],
    ) -> TrapResult {
        match id {
            traps::REGISTER_ACTOR => self.do_register_actor(ctx, args),
            traps::REGISTER_CONN => self.do_register_conn(ctx, args),
            traps::REGISTER_LINK => self.do_register_link(args),
            traps::BOOT_COMPLETE => self.do_boot_complete(ctx),

            traps::PUSH_TOKEN => {
                let [conn, idx, value] = args else {
                    return TrapResult::Fault("push_token arity");
                };
                let conn = ConnId(*conn);
                if self.graph.conns.get(conn.0 as usize).is_some() && self.token_words(conn) != 1 {
                    return self.fail(
                        "scalar push on struct-typed connection".into(),
                        "wrong token width",
                    );
                }
                self.push_words(ctx, current, conn, *idx, &[*value])
            }
            traps::POP_TOKEN => {
                let [conn, idx] = args else {
                    return TrapResult::Fault("pop_token arity");
                };
                let conn = ConnId(*conn);
                if self.graph.conns.get(conn.0 as usize).is_some() && self.token_words(conn) != 1 {
                    return self.fail(
                        "scalar pop on struct-typed connection".into(),
                        "wrong token width",
                    );
                }
                match self.fill_window(ctx, current, conn, *idx) {
                    Ok(off) => TrapResult::Done1(self.conns_rt[conn.0 as usize].window[off]),
                    Err(r) => r,
                }
            }
            traps::PUSH_STRUCT => {
                let [conn, idx, local_base] = args else {
                    return TrapResult::Fault("push_struct arity");
                };
                let conn = ConnId(*conn);
                if self.graph.conns.get(conn.0 as usize).is_none() {
                    return self.fail(format!("push: bad conn {}", conn.0), "bad conn");
                }
                let tw = self.token_words(conn) as usize;
                // The stub's caller holds the struct in its locals.
                let depth = current.frames.len();
                if depth < 2 {
                    return TrapResult::Fault("struct push without caller");
                }
                let caller = &current.frames[depth - 2];
                let base = *local_base as usize;
                if base + tw > caller.locals.len() {
                    return self.fail("struct push out of caller frame".into(), "bad struct slot");
                }
                let words: Vec<Word> = caller.locals[base..base + tw].to_vec();
                self.push_words(ctx, current, conn, *idx, &words)
            }
            traps::POP_STRUCT => {
                let [conn, idx, local_base] = args else {
                    return TrapResult::Fault("pop_struct arity");
                };
                let conn = ConnId(*conn);
                if self.graph.conns.get(conn.0 as usize).is_none() {
                    return self.fail(format!("pop: bad conn {}", conn.0), "bad conn");
                }
                let tw = self.token_words(conn) as usize;
                match self.fill_window(ctx, current, conn, *idx) {
                    Ok(off) => {
                        let words: Vec<Word> =
                            self.conns_rt[conn.0 as usize].window[off..off + tw].to_vec();
                        let depth = current.frames.len();
                        if depth < 2 {
                            return TrapResult::Fault("struct pop without caller");
                        }
                        let caller = &mut current.frames[depth - 2];
                        let base = *local_base as usize;
                        if base + tw > caller.locals.len() {
                            return self
                                .fail("struct pop out of caller frame".into(), "bad struct slot");
                        }
                        caller.locals[base..base + tw].copy_from_slice(&words);
                        TrapResult::Done
                    }
                    Err(r) => r,
                }
            }
            traps::TOKENS_AVAILABLE => {
                let [conn] = args else {
                    return TrapResult::Fault("tokens_available arity");
                };
                match self.graph.conns.get(*conn as usize).and_then(|c| c.link) {
                    Some(link) => TrapResult::Done1(self.fifos[link.0 as usize].occupancy()),
                    None => self.fail(format!("tokens_available: unbound conn {conn}"), "unbound"),
                }
            }
            traps::LINK_SPACE => {
                let [conn] = args else {
                    return TrapResult::Fault("link_space arity");
                };
                match self.graph.conns.get(*conn as usize).and_then(|c| c.link) {
                    Some(link) => {
                        let f = &self.fifos[link.0 as usize];
                        TrapResult::Done1(f.capacity - f.occupancy())
                    }
                    None => self.fail(format!("link_space: unbound conn {conn}"), "unbound"),
                }
            }

            traps::ACTOR_START => {
                let [actor] = args else {
                    return TrapResult::Fault("actor_start arity");
                };
                match self.filter_of(*actor) {
                    Ok(a) => self.do_actor_start(ctx, a),
                    Err(r) => r,
                }
            }
            traps::ACTOR_SYNC => {
                let [actor] = args else {
                    return TrapResult::Fault("actor_sync arity");
                };
                match self.filter_of(*actor) {
                    Ok(a) => self.do_actor_sync(a),
                    Err(r) => r,
                }
            }
            traps::ACTOR_FIRE => {
                let [actor] = args else {
                    return TrapResult::Fault("actor_fire arity");
                };
                match self.filter_of(*actor) {
                    Ok(a) => match self.do_actor_start(ctx, a) {
                        TrapResult::Done => self.do_actor_sync(a),
                        r => r,
                    },
                    Err(r) => r,
                }
            }
            traps::WAIT_ACTOR_INIT => {
                let module = match self.controller_module(pe) {
                    Ok(m) => m,
                    Err(r) => return r,
                };
                let pending = self.module_filters(module).into_iter().any(|f| {
                    let rt = &self.actors_rt[f.0 as usize];
                    rt.started && !rt.begun
                });
                if pending {
                    TrapResult::Block(BlockReason::InitWait)
                } else {
                    TrapResult::Done
                }
            }
            traps::WAIT_ACTOR_SYNC => {
                let module = match self.controller_module(pe) {
                    Ok(m) => m,
                    Err(r) => return r,
                };
                let filters = self.module_filters(module);
                let pending = filters.iter().any(|f| {
                    let rt = &self.actors_rt[f.0 as usize];
                    rt.sync_requested && rt.sched != FilterSched::Synced
                });
                if pending {
                    return TrapResult::Block(BlockReason::SyncWait);
                }
                // Step boundary: reset every synced filter for the next step.
                for f in filters {
                    let rt = &mut self.actors_rt[f.0 as usize];
                    if rt.sync_requested {
                        rt.sync_requested = false;
                        rt.started = false;
                        rt.begun = false;
                        rt.sched = FilterSched::NotScheduled;
                    }
                }
                TrapResult::Done
            }
            traps::STEP_BEGIN => {
                let module = match self.controller_module(pe) {
                    Ok(m) => m,
                    Err(r) => return r,
                };
                // A controller's WORK never returns between steps (it loops
                // until `pedf_continue` says stop), so its I/O windows reset
                // at the step boundary it declares, not at task completion.
                if let Some(&ctrl) = self.pe_actor.get(&pe) {
                    let conns: Vec<ConnId> = self.graph.actor(ctrl).conns().collect();
                    for c in conns {
                        let rt = &mut self.conns_rt[c.0 as usize];
                        rt.window.clear();
                        rt.window_tokens = 0;
                        rt.written = 0;
                    }
                }
                let m = &mut self.modules_rt[module.0 as usize];
                m.steps += 1;
                let step = m.steps;
                self.events
                    .push(|| RuntimeEvent::StepBegun { module, step });
                TrapResult::Done
            }
            traps::STEP_END => {
                let module = match self.controller_module(pe) {
                    Ok(m) => m,
                    Err(r) => return r,
                };
                let step = self.modules_rt[module.0 as usize].steps;
                self.events
                    .push(|| RuntimeEvent::StepEnded { module, step });
                TrapResult::Done
            }
            traps::CONTINUE => {
                let module = match self.controller_module(pe) {
                    Ok(m) => m,
                    Err(r) => return r,
                };
                let m = &self.modules_rt[module.0 as usize];
                let done = m.stop || m.max_steps.is_some_and(|max| m.steps >= max);
                TrapResult::Done1(u32::from(!done))
            }
            traps::PRINT => {
                let [value] = args else {
                    return TrapResult::Fault("print arity");
                };
                self.console.push(format!("{value}"));
                TrapResult::Done
            }
            other => self.fail(format!("unknown trap {other}"), "unknown trap"),
        }
    }

    // ---- environment I/O ---------------------------------------------------

    fn run_env(&mut self, ctx: &mut TrapCtx<'_>) {
        let mut sources = std::mem::take(&mut self.sources);
        for s in &mut sources {
            // One token per cycle at most, catching up after stalls.
            if !s.due(ctx.clock) {
                continue;
            }
            let Some(link) = self.graph.conn(s.conn).link else {
                continue;
            };
            let ty = self.graph.conn(s.conn).ty;
            let fifo = &mut self.fifos[link.0 as usize];
            if fifo.is_full() {
                continue; // retry next cycle; order preserved
            }
            // Record/replay point: on a first-run cycle this pulls a fresh
            // value and records it; on a replayed cycle it re-serves the
            // recorded value, because the environment is outside the
            // deterministic machine and cannot be re-executed.
            let v = s.pull();
            if let Ok(Some((index, _))) = fifo.push(ctx.mem, &[v]) {
                s.produced += 1;
                self.stats.tokens_pushed += 1;
                let conn = s.conn;
                self.events.push_env(|| RuntimeEvent::TokenPushed {
                    conn,
                    link,
                    index,
                    value: Value::scalar(ty, v),
                });
            }
        }
        self.sources = sources;

        let mut sinks = std::mem::take(&mut self.sinks);
        for k in &mut sinks {
            if !k.due(ctx.clock) {
                continue;
            }
            let Some(link) = self.graph.conn(k.conn).link else {
                continue;
            };
            let ty = self.graph.conn(k.conn).ty;
            self.pop_buf.clear();
            let fifo = &mut self.fifos[link.0 as usize];
            if let Ok(Some((index, _))) = fifo.pop(ctx.mem, &mut self.pop_buf) {
                self.stats.tokens_popped += 1;
                k.record(self.pop_buf.first().copied().unwrap_or(0));
                let conn = k.conn;
                let words = self.pop_buf.clone();
                self.events.push_env(|| RuntimeEvent::TokenPopped {
                    conn,
                    link,
                    index,
                    value: Value::record(ty, words),
                });
            }
        }
        self.sinks = sinks;
    }

    // ---- public configuration & inspection API ----------------------------

    /// Attach a source to a module input connection (post-boot).
    pub fn add_source(&mut self, source: EnvSource) -> Result<(), String> {
        let c = self
            .graph
            .conns
            .get(source.conn.0 as usize)
            .ok_or("no such connection")?;
        if self.graph.actor(c.actor).kind != ActorKind::Module || c.dir != Dir::In {
            return Err(format!("`{}` is not a module input connection", c.name));
        }
        if c.link.is_none() {
            return Err(format!("module input `{}` is unbound", c.name));
        }
        if self.types.size_words(c.ty) != 1 {
            return Err("sources only feed scalar-typed links".into());
        }
        self.sources.push(source);
        Ok(())
    }

    /// Attach a sink to a module output connection (post-boot).
    pub fn add_sink(&mut self, sink: EnvSink) -> Result<(), String> {
        let c = self
            .graph
            .conns
            .get(sink.conn.0 as usize)
            .ok_or("no such connection")?;
        if self.graph.actor(c.actor).kind != ActorKind::Module || c.dir != Dir::Out {
            return Err(format!("`{}` is not a module output connection", c.name));
        }
        if c.link.is_none() {
            return Err(format!("module output `{}` is unbound", c.name));
        }
        self.sinks.push(sink);
        Ok(())
    }

    pub fn sink_for(&self, conn: ConnId) -> Option<&EnvSink> {
        self.sinks.iter().find(|s| s.conn == conn)
    }

    /// All attached sinks, in attachment order (observable-outcome
    /// signatures for multiverse exploration).
    pub fn sinks(&self) -> &[EnvSink] {
        &self.sinks
    }

    pub fn source_for(&self, conn: ConnId) -> Option<&EnvSource> {
        self.sources.iter().find(|s| s.conn == conn)
    }

    /// Tokens currently queued on `link`.
    pub fn occupancy(&self, link: LinkId) -> u32 {
        self.fifos[link.0 as usize].occupancy()
    }

    /// `(pushed, popped)` monotonic counters of `link`.
    pub fn counters(&self, link: LinkId) -> (u64, u64) {
        let f = &self.fifos[link.0 as usize];
        (f.pushed, f.popped)
    }

    /// Typed snapshot of the queued tokens (debugger `graph`/`iface print`).
    pub fn queued_tokens(&self, mem: &p2012::Memory, link: LinkId) -> Vec<Value> {
        let f = &self.fifos[link.0 as usize];
        let ty = self.graph.conn(self.graph.link(link).from).ty;
        (0..f.occupancy())
            .filter_map(|i| f.peek(mem, i))
            .map(|words| Value::record(ty, words))
            .collect()
    }

    pub fn filter_sched(&self, actor: ActorId) -> FilterSched {
        self.actors_rt[actor.0 as usize].sched
    }

    /// True while a policy-deferred WORK start is still pending: some
    /// elected filter's `defer_until` lies strictly in the future, so the
    /// machine *will* make progress even though every PE currently looks
    /// idle or blocked. Deadlock detection must treat such a state as
    /// alive — the pending invocation is runtime state the platform
    /// cannot see. Always false under the default policy.
    pub fn pending_deferred(&self, clock: u64) -> bool {
        self.actors_rt
            .iter()
            .any(|rt| rt.sched == FilterSched::Scheduled && rt.defer_until > clock)
    }

    pub fn steps_done(&self, actor: ActorId) -> u64 {
        self.actors_rt[actor.0 as usize].steps_done
    }

    pub fn module_steps(&self, module: ActorId) -> u64 {
        self.modules_rt
            .get(module.0 as usize)
            .map_or(0, |m| m.steps)
    }

    /// Grow-on-demand access: module limits may be configured before boot,
    /// i.e. before the registration traps have sized the table.
    fn module_rt_mut(&mut self, module: ActorId) -> &mut ModuleRt {
        let idx = module.0 as usize;
        if idx >= self.modules_rt.len() {
            self.modules_rt.resize_with(idx + 1, ModuleRt::default);
        }
        &mut self.modules_rt[idx]
    }

    pub fn set_max_steps(&mut self, module: ActorId, max: u64) {
        self.module_rt_mut(module).max_steps = Some(max);
    }

    pub fn request_stop(&mut self, module: ActorId) {
        self.module_rt_mut(module).stop = true;
    }

    /// Debugger: append a token to `link` out of thin air (§III "Altering
    /// the Normal Execution" — e.g. untying a deadlock).
    pub fn inject_token(
        &mut self,
        mem: &mut p2012::Memory,
        link: LinkId,
        value: &Value,
    ) -> Result<u64, String> {
        let ty = self.graph.conn(self.graph.link(link).from).ty;
        if value.ty != ty {
            return Err(format!(
                "type mismatch: link carries {}, got {}",
                self.types.name(ty),
                self.types.name(value.ty)
            ));
        }
        self.fifos[link.0 as usize].inject(mem, &value.words)
    }

    /// Debugger: overwrite the `idx`-th queued token.
    pub fn set_token(
        &mut self,
        mem: &mut p2012::Memory,
        link: LinkId,
        idx: u32,
        value: &Value,
    ) -> Result<(), String> {
        let ty = self.graph.conn(self.graph.link(link).from).ty;
        if value.ty != ty {
            return Err("type mismatch".to_string());
        }
        self.fifos[link.0 as usize].overwrite(mem, idx, &value.words)
    }

    /// Debugger: delete the `idx`-th queued token.
    pub fn drop_token(
        &mut self,
        mem: &mut p2012::Memory,
        link: LinkId,
        idx: u32,
    ) -> Result<(), String> {
        self.fifos[link.0 as usize].remove(mem, idx)
    }

    // ---- checkpoint/replay -------------------------------------------------

    /// Capture the dynamic runtime state (see [`RuntimeState`]).
    pub fn capture_state(&self) -> RuntimeState {
        RuntimeState {
            actors_rt: self.actors_rt.clone(),
            conns_rt: self.conns_rt.clone(),
            fifos: self.fifos.clone(),
            modules_rt: self.modules_rt.clone(),
            booted: self.booted,
            console: self.console.clone(),
            events: self.events.clone(),
            protocol_errors: self.protocol_errors.clone(),
            stats: self.stats,
            sources: self.sources.iter().map(EnvSource::capture_state).collect(),
            sinks: self.sinks.iter().map(EnvSink::capture_state).collect(),
            policy: self.policy.clone(),
        }
    }

    /// Restore a captured runtime state. The graph, type table and
    /// PE↔actor mapping are static after boot and left untouched; env
    /// sources rewind to their recorded position (unless they are
    /// `re_pull` test sources, which model an un-rewindable environment).
    pub fn restore_state(&mut self, s: &RuntimeState) {
        self.actors_rt.clone_from(&s.actors_rt);
        self.conns_rt.clone_from(&s.conns_rt);
        self.fifos.clone_from(&s.fifos);
        self.modules_rt.clone_from(&s.modules_rt);
        self.booted = s.booted;
        self.console.clone_from(&s.console);
        self.events = s.events.clone();
        self.protocol_errors.clone_from(&s.protocol_errors);
        self.stats = s.stats;
        for (src, st) in self.sources.iter_mut().zip(&s.sources) {
            src.restore_state(st);
        }
        for (snk, st) in self.sinks.iter_mut().zip(&s.sinks) {
            snk.restore_state(st);
        }
        self.policy = s.policy.clone();
        self.pop_buf.clear();
    }

    /// Feed the dynamic runtime state to a hasher (divergence check).
    pub fn hash_state(&self, h: &mut dyn std::hash::Hasher) {
        h.write_u8(u8::from(self.booted));
        h.write_u64(self.stats.tokens_pushed);
        h.write_u64(self.stats.tokens_popped);
        h.write_u64(self.stats.work_invocations);
        for a in &self.actors_rt {
            h.write(format!("{:?}", a.sched).as_bytes());
            h.write_u8(u8::from(a.started));
            h.write_u8(u8::from(a.begun));
            h.write_u8(u8::from(a.sync_requested));
            h.write_u64(a.steps_done);
            h.write_u64(a.defer_until);
        }
        for c in &self.conns_rt {
            h.write_u32(c.window_tokens);
            h.write_u32(c.written);
            for w in &c.window {
                h.write_u32(*w);
            }
        }
        for f in &self.fifos {
            h.write_u64(f.pushed);
            h.write_u64(f.popped);
        }
        for m in &self.modules_rt {
            h.write_u64(m.steps);
            h.write_u8(u8::from(m.stop));
        }
        h.write_usize(self.console.len());
        h.write_usize(self.protocol_errors.len());
        for s in &self.sources {
            h.write_u64(s.produced);
        }
        for k in &self.sinks {
            h.write_u64(k.consumed);
            h.write_u64(k.checksum);
        }
        self.policy.hash_state(h);
    }
}

impl TrapHandler for Runtime {
    fn trap(
        &mut self,
        ctx: &mut TrapCtx<'_>,
        pe: PeId,
        current: &mut PeState,
        id: u16,
        args: &[Word],
    ) -> TrapResult {
        self.service(ctx, pe, current, id, args)
    }

    fn choose_dma_order(&mut self, n_active: u32, clock: u64) -> u32 {
        u32::from(self.policy.decide(ChoiceKind::DmaOrder, n_active, clock))
    }

    fn on_task_complete(&mut self, ctx: &mut TrapCtx<'_>, pe: PeId, current: &mut PeState) {
        let Some(&actor) = self.pe_actor.get(&pe) else {
            return; // boot code finishing on the host
        };
        let kind = self.graph.actor(actor).kind;
        if kind == ActorKind::Controller {
            // Controller loop exited (pedf_continue returned 0).
            self.actors_rt[actor.0 as usize].sched = FilterSched::Synced;
            return;
        }
        // A filter finished one WORK step.
        let steps_done = {
            let rt = &mut self.actors_rt[actor.0 as usize];
            rt.steps_done += 1;
            rt.steps_done
        };
        // Step boundary: reset this filter's I/O windows.
        let conns: Vec<ConnId> = self.graph.actor(actor).conns().collect();
        for c in conns {
            let rt = &mut self.conns_rt[c.0 as usize];
            rt.window.clear();
            rt.window_tokens = 0;
            rt.written = 0;
        }
        self.events
            .push(|| RuntimeEvent::WorkEnded { actor, steps_done });
        let rt = &mut self.actors_rt[actor.0 as usize];
        if rt.sync_requested {
            rt.sched = FilterSched::Synced;
            self.events.push(|| RuntimeEvent::ActorSynced { actor });
        } else if rt.started {
            // Free-running: the next step normally begins immediately, but
            // the re-invocation is an election too — the policy may defer.
            let code = self
                .policy
                .decide(ChoiceKind::ActorStart, actor.0, ctx.clock);
            let delay = DELAYS[code as usize % DELAYS.len()];
            if delay == 0 {
                let work = self.graph.actor(actor).work_addr.unwrap();
                current.invoke(work, &[]);
                let rt = &mut self.actors_rt[actor.0 as usize];
                rt.begun = true;
                rt.sched = FilterSched::Running;
                self.stats.work_invocations += 1;
                self.events.push(|| RuntimeEvent::WorkBegun { actor });
            } else {
                let rt = &mut self.actors_rt[actor.0 as usize];
                rt.begun = false;
                rt.sched = FilterSched::Scheduled;
                rt.defer_until = ctx.clock + delay;
            }
        } else {
            rt.sched = FilterSched::NotScheduled;
        }
    }

    fn on_cycle(&mut self, ctx: &mut TrapCtx<'_>) {
        if self.booted {
            self.run_env(ctx);
        }
        // Late-start scheduled filters whose PE freed up outside
        // on_task_complete (e.g. after a fault recovery).
        if self.booted {
            let pending: Vec<ActorId> = self
                .graph
                .filters()
                .filter(|a| self.actors_rt[a.id.0 as usize].sched == FilterSched::Scheduled)
                .map(|a| a.id)
                .collect();
            for actor in pending {
                let a = self.graph.actor(actor);
                let (Some(pe), Some(work)) = (a.pe, a.work_addr) else {
                    continue;
                };
                if self.actors_rt[actor.0 as usize].defer_until > ctx.clock {
                    continue; // policy-deferred election not yet due
                }
                if matches!(ctx.pe(pe).status, PeStatus::Idle) {
                    ctx.invoke(pe, work, &[]);
                    let rt = &mut self.actors_rt[actor.0 as usize];
                    rt.begun = true;
                    rt.sched = FilterSched::Running;
                    rt.defer_until = 0;
                    self.stats.work_invocations += 1;
                    self.events.push(|| RuntimeEvent::WorkBegun { actor });
                }
            }
        }
    }
}
