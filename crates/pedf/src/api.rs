//! The PEDF framework API: trap numbers, exported bytecode stubs and the
//! string pool used by boot-time registration.
//!
//! Every framework operation is exported as a tiny bytecode function (a
//! *stub*) whose body is one `Trap` instruction. Stubs carry symbols and
//! DWARF-style parameter descriptors, so the paper's capture mechanism —
//! "internal function breakpoints set at the entry and exit points of the
//! programming-model related functions exported by the dataflow framework"
//! (§V) — works unchanged: the debugger resolves `pedf_push_token`, plants
//! a breakpoint on its entry, and parses the call arguments out of the
//! callee frame using only debug information.

use debuginfo::{mangle, DebugInfoBuilder, ParamInfo, SymbolKind, TypeTable, Word};
use p2012::{CodeAddr, Insn, Memory, ProgramBuilder};

/// Trap numbers. Programs never use these directly — they call the stubs.
pub mod traps {
    pub const REGISTER_ACTOR: u16 = 1;
    pub const REGISTER_CONN: u16 = 2;
    pub const REGISTER_LINK: u16 = 3;
    pub const BOOT_COMPLETE: u16 = 4;
    pub const PUSH_TOKEN: u16 = 5;
    pub const POP_TOKEN: u16 = 6;
    pub const PUSH_STRUCT: u16 = 7;
    pub const POP_STRUCT: u16 = 8;
    pub const TOKENS_AVAILABLE: u16 = 9;
    pub const LINK_SPACE: u16 = 10;
    pub const ACTOR_START: u16 = 11;
    pub const ACTOR_SYNC: u16 = 12;
    pub const ACTOR_FIRE: u16 = 13;
    pub const WAIT_ACTOR_INIT: u16 = 14;
    pub const WAIT_ACTOR_SYNC: u16 = 15;
    pub const STEP_BEGIN: u16 = 16;
    pub const STEP_END: u16 = 17;
    pub const CONTINUE: u16 = 18;
    pub const PRINT: u16 = 19;
}

/// Sentinel for optional trap arguments encoded as `value + 1` (0 = none).
pub fn encode_opt(v: Option<u32>) -> Word {
    v.map_or(0, |x| x + 1)
}

pub fn decode_opt(w: Word) -> Option<u32> {
    w.checked_sub(1)
}

/// Entry addresses of every exported framework function.
///
/// The kernel compiler emits `Call`s against these; the debugger resolves
/// the same functions by *name* through the symbol table — the two must
/// agree, which the round-trip tests below pin down.
#[derive(Debug, Clone, Copy)]
pub struct ApiStubs {
    pub register_actor: CodeAddr,
    pub register_conn: CodeAddr,
    pub register_link: CodeAddr,
    pub boot_complete: CodeAddr,
    pub push_token: CodeAddr,
    pub pop_token: CodeAddr,
    pub push_struct: CodeAddr,
    pub pop_struct: CodeAddr,
    pub tokens_available: CodeAddr,
    pub link_space: CodeAddr,
    pub actor_start: CodeAddr,
    pub actor_sync: CodeAddr,
    pub actor_fire: CodeAddr,
    pub wait_actor_init: CodeAddr,
    pub wait_actor_sync: CodeAddr,
    pub step_begin: CodeAddr,
    pub step_end: CodeAddr,
    pub continue_: CodeAddr,
    pub print: CodeAddr,
}

/// The names of the data-exchange stubs, i.e. the breakpoints that §V
/// identifies as the dominant source of debugger slowdown. The
/// disable-until-critical mitigation toggles exactly this set.
pub const DATA_EXCHANGE_FNS: [&str; 4] = [
    "pedf_push_token",
    "pedf_pop_token",
    "pedf_push_struct",
    "pedf_pop_struct",
];

/// Emit one stub: `name(args...) { trap; return }`, with symbol + params.
fn stub(
    b: &mut ProgramBuilder,
    di: &mut DebugInfoBuilder,
    name: &str,
    params: &[&str],
    trap: u16,
    retc: u8,
) -> CodeAddr {
    let argc = params.len() as u8;
    let entry = b.begin_func(argc);
    b.emit(Insn::Enter(argc as u16));
    for i in 0..argc {
        b.emit(Insn::LoadLocal(i as u16));
    }
    b.emit(Insn::Trap {
        id: trap,
        argc,
        retc,
    });
    b.emit(Insn::Ret { retc });
    let end = b.here();
    let mangled = mangle::runtime_api(name.strip_prefix("pedf_").unwrap());
    debug_assert_eq!(mangled, name);
    di.symbols_mut()
        .add(
            name,
            &format!("pedf::{}", name.strip_prefix("pedf_").unwrap()),
            SymbolKind::Function,
            entry,
            end - entry,
            params
                .iter()
                .enumerate()
                .map(|(slot, p)| ParamInfo {
                    name: (*p).to_string(),
                    ty: TypeTable::U32,
                    slot: slot as u32,
                })
                .collect(),
        )
        .unwrap_or_else(|| panic!("duplicate stub {name}"));
    entry
}

/// Emit all framework stubs into the image being built.
pub fn emit_stubs(b: &mut ProgramBuilder, di: &mut DebugInfoBuilder) -> ApiStubs {
    ApiStubs {
        register_actor: stub(
            b,
            di,
            "pedf_register_actor",
            &[
                "id",
                "kind",
                "parent1",
                "name_addr",
                "name_len",
                "pe1",
                "work1",
            ],
            traps::REGISTER_ACTOR,
            0,
        ),
        register_conn: stub(
            b,
            di,
            "pedf_register_conn",
            &["id", "actor", "dir", "type", "name_addr", "name_len"],
            traps::REGISTER_CONN,
            0,
        ),
        register_link: stub(
            b,
            di,
            "pedf_register_link",
            &["id", "from", "to", "capacity", "class", "fifo_base"],
            traps::REGISTER_LINK,
            0,
        ),
        boot_complete: stub(b, di, "pedf_boot_complete", &[], traps::BOOT_COMPLETE, 0),
        push_token: stub(
            b,
            di,
            "pedf_push_token",
            &["conn", "index", "value"],
            traps::PUSH_TOKEN,
            0,
        ),
        pop_token: stub(
            b,
            di,
            "pedf_pop_token",
            &["conn", "index"],
            traps::POP_TOKEN,
            1,
        ),
        push_struct: stub(
            b,
            di,
            "pedf_push_struct",
            &["conn", "index", "local_base"],
            traps::PUSH_STRUCT,
            0,
        ),
        pop_struct: stub(
            b,
            di,
            "pedf_pop_struct",
            &["conn", "index", "local_base"],
            traps::POP_STRUCT,
            0,
        ),
        tokens_available: stub(
            b,
            di,
            "pedf_tokens_available",
            &["conn"],
            traps::TOKENS_AVAILABLE,
            1,
        ),
        link_space: stub(b, di, "pedf_link_space", &["conn"], traps::LINK_SPACE, 1),
        actor_start: stub(b, di, "pedf_actor_start", &["actor"], traps::ACTOR_START, 0),
        actor_sync: stub(b, di, "pedf_actor_sync", &["actor"], traps::ACTOR_SYNC, 0),
        actor_fire: stub(b, di, "pedf_actor_fire", &["actor"], traps::ACTOR_FIRE, 0),
        wait_actor_init: stub(
            b,
            di,
            "pedf_wait_actor_init",
            &[],
            traps::WAIT_ACTOR_INIT,
            0,
        ),
        wait_actor_sync: stub(
            b,
            di,
            "pedf_wait_actor_sync",
            &[],
            traps::WAIT_ACTOR_SYNC,
            0,
        ),
        step_begin: stub(b, di, "pedf_step_begin", &[], traps::STEP_BEGIN, 0),
        step_end: stub(b, di, "pedf_step_end", &[], traps::STEP_END, 0),
        continue_: stub(b, di, "pedf_continue", &[], traps::CONTINUE, 1),
        print: stub(b, di, "pedf_print", &["value"], traps::PRINT, 0),
    }
}

/// Boot-time string pool: actor and connection names live as packed words
/// (one character per word) in L3, and registration traps pass
/// `(addr, len)` pairs. This is how textual information crosses the
/// program/runtime boundary without the debugger needing anything beyond
/// memory reads.
#[derive(Debug, Clone, Default)]
pub struct StringPool {
    strings: Vec<String>,
    /// (addr, len) per string, assigned by `layout`.
    placed: Vec<(u32, u32)>,
    base: u32,
}

impl StringPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a string; returns its pool slot.
    pub fn intern(&mut self, s: &str) -> usize {
        if let Some(i) = self.strings.iter().position(|x| x == s) {
            return i;
        }
        self.strings.push(s.to_string());
        self.strings.len() - 1
    }

    /// Assign addresses starting at `base`; returns the first free address
    /// after the pool.
    pub fn layout(&mut self, base: u32) -> u32 {
        self.base = base;
        self.placed.clear();
        let mut cursor = base;
        for s in &self.strings {
            let len = s.chars().count() as u32;
            self.placed.push((cursor, len));
            cursor += len;
        }
        cursor
    }

    /// `(addr, len)` of pool slot `i` (after `layout`).
    pub fn addr_of(&self, i: usize) -> (u32, u32) {
        self.placed[i]
    }

    /// Write the pool into simulated memory (loader path; no latency).
    pub fn install(&self, mem: &mut Memory) -> Result<(), String> {
        for (s, (addr, _)) in self.strings.iter().zip(&self.placed) {
            for (i, c) in s.chars().enumerate() {
                mem.poke(addr + i as u32, c as u32)
                    .map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    }
}

/// Read a pool string back out of simulated memory (runtime and debugger).
pub fn read_string(mem: &Memory, addr: Word, len: Word) -> Option<String> {
    let mut s = String::with_capacity(len as usize);
    for i in 0..len {
        let w = mem.peek(addr + i).ok()?;
        s.push(char::from_u32(w)?);
    }
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2012::MemoryMap;

    #[test]
    fn stubs_register_symbols_with_params() {
        let mut b = ProgramBuilder::new();
        let mut di = DebugInfoBuilder::new();
        let stubs = emit_stubs(&mut b, &mut di);
        let prog = b.finish();
        let info = di.finish();

        let sym = info.symbols.resolve("pedf_push_token").unwrap();
        assert_eq!(sym.addr, stubs.push_token);
        assert_eq!(sym.params.len(), 3);
        assert_eq!(sym.params[2].name, "value");
        // The stub body is Enter + loads + trap + ret.
        assert_eq!(prog.fetch(stubs.push_token), Some(Insn::Enter(3)));
        assert_eq!(
            prog.fetch(stubs.pop_token + 3),
            Some(Insn::Trap {
                id: traps::POP_TOKEN,
                argc: 2,
                retc: 1
            })
        );
        // Pretty names resolve too.
        assert!(info.symbols.resolve("pedf::actor_fire").is_some());
        // All four data-exchange functions exist.
        for name in DATA_EXCHANGE_FNS {
            assert!(info.symbols.resolve(name).is_some(), "{name}");
        }
    }

    #[test]
    fn optional_encoding_round_trips() {
        assert_eq!(decode_opt(encode_opt(None)), None);
        assert_eq!(decode_opt(encode_opt(Some(0))), Some(0));
        assert_eq!(decode_opt(encode_opt(Some(41))), Some(41));
    }

    #[test]
    fn string_pool_round_trips_through_memory() {
        let mut pool = StringPool::new();
        let a = pool.intern("ipred");
        let b = pool.intern("Add2Dblock_ipf_out");
        let a2 = pool.intern("ipred");
        assert_eq!(a, a2);
        let end = pool.layout(p2012::memory::L3_BASE + 100);
        assert_eq!(end, p2012::memory::L3_BASE + 100 + 5 + 18);
        let mut mem = Memory::new(MemoryMap::default());
        pool.install(&mut mem).unwrap();
        let (addr, len) = pool.addr_of(b);
        assert_eq!(read_string(&mem, addr, len).unwrap(), "Add2Dblock_ipf_out");
        let (addr, len) = pool.addr_of(a);
        assert_eq!(read_string(&mem, addr, len).unwrap(), "ipred");
    }
}
