//! The explicit scheduler-choice seam (multiverse debugging, ROADMAP 5).
//!
//! The cycle-stepped simulator is deterministic, but two of its orders are
//! *policy*, not physics: which moment an elected filter's WORK actually
//! begins (the runtime may lawfully delay the invocation while the PE is
//! "busy"), and the order in which concurrently in-flight DMA engines
//! advance within a cycle. [`SchedulePolicy`] reifies both as numbered
//! decision points: every election consumes one decision, the default
//! answer (code 0) reproduces today's behaviour bit for bit, and a sparse
//! set of *overrides* — `(kind, decision index) -> code` — identifies any
//! other universe. Execution is a pure function of the override set, which
//! is what makes a universe byte-replayable from its choice trace.

use std::collections::BTreeMap;

/// Kind of nondeterministic decision point. Each kind has its own
/// monotonically increasing decision counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChoiceKind {
    /// A filter election: the runtime is about to invoke WORK on an idle
    /// PE. The choice code maps to a start delay via [`DELAYS`].
    ActorStart,
    /// Two or more DMA engines are in flight this cycle; the choice code
    /// rotates the order in which they advance.
    DmaOrder,
}

impl ChoiceKind {
    pub const ALL: [ChoiceKind; 2] = [ChoiceKind::ActorStart, ChoiceKind::DmaOrder];

    /// Index of this kind's decision counter (stable: ActorStart=0,
    /// DmaOrder=1).
    pub fn slot(self) -> usize {
        match self {
            ChoiceKind::ActorStart => 0,
            ChoiceKind::DmaOrder => 1,
        }
    }

    /// One-letter tag used in witness strings.
    pub fn tag(self) -> char {
        match self {
            ChoiceKind::ActorStart => 'a',
            ChoiceKind::DmaOrder => 'd',
        }
    }

    pub fn from_tag(c: char) -> Option<ChoiceKind> {
        match c {
            'a' => Some(ChoiceKind::ActorStart),
            'd' => Some(ChoiceKind::DmaOrder),
            _ => None,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            ChoiceKind::ActorStart => "actor-start",
            ChoiceKind::DmaOrder => "dma-order",
        }
    }
}

/// Start-delay alphabet for [`ChoiceKind::ActorStart`]: choice code `c`
/// delays the elected WORK invocation by `DELAYS[c % DELAYS.len()]`
/// cycles. Code 0 (the default) starts immediately — today's behaviour.
pub const DELAYS: [u64; 8] = [0, 1, 2, 4, 8, 16, 32, 64];

/// One executed decision, as recorded in a universe's choice trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChoiceRec {
    pub kind: ChoiceKind,
    pub index: u64,
    pub code: u8,
}

impl std::fmt::Display for ChoiceRec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}.{}", self.kind.tag(), self.index, self.code)
    }
}

impl ChoiceRec {
    /// Parse the `Display` form (`a.<index>.<code>`).
    pub fn parse(s: &str) -> Option<ChoiceRec> {
        let mut it = s.splitn(3, '.');
        let kind = ChoiceKind::from_tag(it.next()?.chars().next()?)?;
        let index = it.next()?.parse().ok()?;
        let code = it.next()?.parse().ok()?;
        Some(ChoiceRec { kind, index, code })
    }
}

/// What a decision point resolved to, for the explorer's reference-run
/// recording (which actor was elected at each index, at which cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionPoint {
    pub kind: ChoiceKind,
    pub index: u64,
    /// Actor id for `ActorStart`, number of in-flight engines for
    /// `DmaOrder`.
    pub subject: u32,
    pub clock: u64,
}

/// The scheduling policy: default deterministic election order plus a
/// sparse set of overrides. Lives inside the runtime, travels with
/// checkpoints (the decision counters are machine state: re-running from a
/// restored checkpoint must re-consume the same decision indices).
#[derive(Debug, Clone, Default)]
pub struct SchedulePolicy {
    overrides: BTreeMap<(u8, u64), u8>,
    counters: [u64; 2],
    /// When set, every decision point is appended (explorer reference
    /// runs only; `None` in normal sessions, so the hot path stays an
    /// integer increment).
    pub recording: Option<Vec<DecisionPoint>>,
}

impl SchedulePolicy {
    /// Consume the next decision of `kind`; returns the chosen code
    /// (0 unless overridden). `subject` is recorded when recording is on.
    pub fn decide(&mut self, kind: ChoiceKind, subject: u32, clock: u64) -> u8 {
        let slot = kind.slot();
        let index = self.counters[slot];
        self.counters[slot] += 1;
        if let Some(rec) = &mut self.recording {
            rec.push(DecisionPoint {
                kind,
                index,
                subject,
                clock,
            });
        }
        if self.overrides.is_empty() {
            return 0;
        }
        self.overrides
            .get(&(slot as u8, index))
            .copied()
            .unwrap_or(0)
    }

    /// Decisions of `kind` consumed so far.
    pub fn decisions(&self, kind: ChoiceKind) -> u64 {
        self.counters[kind.slot()]
    }

    /// Install one override: the `index`-th decision of `kind` answers
    /// `code` instead of 0.
    pub fn set_override(&mut self, rec: ChoiceRec) {
        self.overrides
            .insert((rec.kind.slot() as u8, rec.index), rec.code);
    }

    pub fn set_overrides(&mut self, recs: &[ChoiceRec]) {
        for r in recs {
            self.set_override(*r);
        }
    }

    pub fn clear_overrides(&mut self) {
        self.overrides.clear();
    }

    /// The installed overrides in deterministic order.
    pub fn overrides(&self) -> Vec<ChoiceRec> {
        self.overrides
            .iter()
            .map(|(&(slot, index), &code)| ChoiceRec {
                kind: if slot == 0 {
                    ChoiceKind::ActorStart
                } else {
                    ChoiceKind::DmaOrder
                },
                index,
                code,
            })
            .collect()
    }

    pub fn is_default(&self) -> bool {
        self.overrides.is_empty()
    }

    /// Feed the policy state to a hasher (divergence checks): counters and
    /// overrides are machine state, the recording buffer is not.
    pub fn hash_state(&self, h: &mut dyn std::hash::Hasher) {
        h.write_u64(self.counters[0]);
        h.write_u64(self.counters[1]);
        h.write_usize(self.overrides.len());
        for (&(slot, index), &code) in &self.overrides {
            h.write_u8(slot);
            h.write_u64(index);
            h.write_u8(code);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_answers_zero_and_counts() {
        let mut p = SchedulePolicy::default();
        assert_eq!(p.decide(ChoiceKind::ActorStart, 7, 10), 0);
        assert_eq!(p.decide(ChoiceKind::ActorStart, 8, 11), 0);
        assert_eq!(p.decide(ChoiceKind::DmaOrder, 2, 11), 0);
        assert_eq!(p.decisions(ChoiceKind::ActorStart), 2);
        assert_eq!(p.decisions(ChoiceKind::DmaOrder), 1);
        assert!(p.is_default());
    }

    #[test]
    fn overrides_hit_their_index_only() {
        let mut p = SchedulePolicy::default();
        p.set_override(ChoiceRec {
            kind: ChoiceKind::ActorStart,
            index: 1,
            code: 4,
        });
        assert_eq!(p.decide(ChoiceKind::ActorStart, 0, 0), 0);
        assert_eq!(p.decide(ChoiceKind::ActorStart, 0, 0), 4);
        assert_eq!(p.decide(ChoiceKind::ActorStart, 0, 0), 0);
        // DmaOrder counters are independent.
        assert_eq!(p.decide(ChoiceKind::DmaOrder, 2, 0), 0);
    }

    #[test]
    fn recording_captures_decision_points() {
        let mut p = SchedulePolicy {
            recording: Some(Vec::new()),
            ..Default::default()
        };
        p.decide(ChoiceKind::ActorStart, 3, 100);
        p.decide(ChoiceKind::DmaOrder, 2, 101);
        let rec = p.recording.take().unwrap();
        assert_eq!(rec.len(), 2);
        assert_eq!(rec[0].subject, 3);
        assert_eq!(rec[1].kind, ChoiceKind::DmaOrder);
    }

    #[test]
    fn choice_rec_round_trips_through_display() {
        let r = ChoiceRec {
            kind: ChoiceKind::ActorStart,
            index: 12,
            code: 4,
        };
        assert_eq!(ChoiceRec::parse(&r.to_string()), Some(r));
        assert_eq!(
            ChoiceRec::parse("d.0.2").unwrap().kind,
            ChoiceKind::DmaOrder
        );
        assert!(ChoiceRec::parse("x.0.2").is_none());
        assert!(ChoiceRec::parse("a.0").is_none());
    }
}
