//! Direct runtime event stream — the *framework cooperation* path.
//!
//! The paper's debugger deliberately avoids modifying the framework and
//! derives everything from breakpoints; §V then proposes "framework
//! cooperation" as a future optimization. We implement both so the overhead
//! benchmark (experiment E1) can quantify the gap: when [`EventBuffer`] is
//! enabled the runtime publishes each dataflow event directly, and an
//! observer (debugger or test) drains the buffer once per cycle instead of
//! paying a breakpoint stop per framework call.

use debuginfo::Value;

use crate::graph::{ActorId, ConnId, LinkId};

/// One dataflow-level event.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeEvent {
    ActorRegistered {
        actor: ActorId,
    },
    LinkRegistered {
        link: LinkId,
    },
    BootComplete,
    /// A token entered `link` through output connection `conn`.
    TokenPushed {
        conn: ConnId,
        link: LinkId,
        /// Global (monotonic) token index on this link.
        index: u64,
        value: Value,
    },
    /// A token left `link` through input connection `conn`.
    TokenPopped {
        conn: ConnId,
        link: LinkId,
        index: u64,
        value: Value,
    },
    /// Controller scheduled the actor (ACTOR_START).
    ActorStarted {
        actor: ActorId,
    },
    /// Controller requested end-of-step stop (ACTOR_SYNC).
    ActorSyncRequested {
        actor: ActorId,
    },
    /// The actor's WORK method began executing.
    WorkBegun {
        actor: ActorId,
    },
    /// The actor's WORK method returned (one step done).
    WorkEnded {
        actor: ActorId,
        steps_done: u64,
    },
    /// The actor reached its requested sync point.
    ActorSynced {
        actor: ActorId,
    },
    StepBegun {
        module: ActorId,
        step: u64,
    },
    StepEnded {
        module: ActorId,
        step: u64,
    },
}

/// Gated event sink. Disabled (the default) it costs one branch per event
/// site, preserving the honest no-debugger baseline for benchmarks.
///
/// Two gates exist: `enabled` publishes everything (framework
/// cooperation), `env_enabled` publishes only host-side environment I/O —
/// the traffic a breakpoint-based debugger cannot observe because no
/// fabric code executes it (the host feeds links directly through DMA).
/// If the observer stops draining (or a cycle produces a pathological
/// storm), the buffer keeps only the newest `EVENT_CAP` events and counts
/// the overflow instead of growing without bound.
pub const EVENT_CAP: usize = 1 << 16;

#[derive(Debug, Clone, Default)]
pub struct EventBuffer {
    enabled: bool,
    env_enabled: bool,
    events: std::collections::VecDeque<RuntimeEvent>,
    /// Events discarded because the buffer was full.
    dropped: u64,
}

impl EventBuffer {
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Publish only environment (host-boundary) token events.
    pub fn enable_env_only(&mut self) {
        self.env_enabled = true;
    }

    pub fn disable(&mut self) {
        self.enabled = false;
        self.env_enabled = false;
        self.events.clear();
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    pub fn push(&mut self, f: impl FnOnce() -> RuntimeEvent) {
        if self.enabled {
            self.push_bounded(f());
        }
    }

    /// Event site for host-side environment I/O.
    #[inline]
    pub fn push_env(&mut self, f: impl FnOnce() -> RuntimeEvent) {
        if self.enabled || self.env_enabled {
            self.push_bounded(f());
        }
    }

    fn push_bounded(&mut self, ev: RuntimeEvent) {
        if self.events.len() == EVENT_CAP {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Events discarded because the observer fell behind the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain accumulated events (observer, once per cycle).
    pub fn drain(&mut self) -> Vec<RuntimeEvent> {
        std::mem::take(&mut self.events).into_iter().collect()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_buffer_drops_oldest_and_counts() {
        let mut b = EventBuffer::default();
        b.enable();
        for _ in 0..EVENT_CAP + 3 {
            b.push(|| RuntimeEvent::BootComplete);
        }
        assert_eq!(b.len(), EVENT_CAP);
        assert_eq!(b.dropped(), 3);
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut b = EventBuffer::default();
        b.push(|| RuntimeEvent::BootComplete);
        assert!(b.is_empty());
        b.enable();
        b.push(|| RuntimeEvent::BootComplete);
        assert_eq!(b.len(), 1);
        assert_eq!(b.drain(), vec![RuntimeEvent::BootComplete]);
        assert!(b.is_empty());
        b.disable();
        b.push(|| RuntimeEvent::BootComplete);
        assert!(b.is_empty());
    }
}
