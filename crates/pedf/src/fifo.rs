//! Token FIFOs backed by simulated memory.
//!
//! Every link owns a ring buffer of `capacity` tokens of `token_words`
//! words each, living at a fixed base address in the memory level chosen by
//! the mapper (L1 for intra-cluster links, L2 inter-cluster, L3 for
//! host-boundary links). Keeping payloads in *simulated* memory — instead
//! of hiding them in the runtime — matters twice for the paper:
//! watchpoints can fire on token traffic, and the debugger "could directly
//! read \[a link's content\] from the framework memory" (§VI-D).
//!
//! The monotonically increasing `pushed`/`popped` counters are the
//! "indexes of the token pushed in and out of the link" that Contribution
//! #3 intercepts: since dataflow order is preserved, the pair (link,
//! index) identifies one token for its whole life.

use debuginfo::Word;
use p2012::{MemError, Memory};

/// Runtime state of one link's FIFO.
#[derive(Debug, Clone)]
pub struct FifoState {
    pub base: u32,
    pub capacity: u32,
    pub token_words: u32,
    /// Tokens ever pushed (the next push gets this index).
    pub pushed: u64,
    /// Tokens ever popped (the next pop gets this index).
    pub popped: u64,
}

impl FifoState {
    pub fn new(base: u32, capacity: u32, token_words: u32) -> Self {
        assert!(capacity > 0 && token_words > 0);
        FifoState {
            base,
            capacity,
            token_words,
            pushed: 0,
            popped: 0,
        }
    }

    pub fn occupancy(&self) -> u32 {
        (self.pushed - self.popped) as u32
    }

    pub fn is_full(&self) -> bool {
        self.occupancy() == self.capacity
    }

    pub fn is_empty(&self) -> bool {
        self.pushed == self.popped
    }

    fn slot_addr(&self, logical: u64) -> u32 {
        self.base + (logical % u64::from(self.capacity)) as u32 * self.token_words
    }

    /// Append a token. Returns the token's global index and the accumulated
    /// memory-stall cycles, or `None` when full (caller blocks the PE).
    pub fn push(
        &mut self,
        mem: &mut Memory,
        words: &[Word],
    ) -> Result<Option<(u64, u32)>, MemError> {
        debug_assert_eq!(words.len() as u32, self.token_words);
        if self.is_full() {
            return Ok(None);
        }
        let addr = self.slot_addr(self.pushed);
        let mut stall = 0;
        for (i, w) in words.iter().enumerate() {
            stall += mem.write(addr + i as u32, *w)?;
        }
        let index = self.pushed;
        self.pushed += 1;
        Ok(Some((index, stall)))
    }

    /// Remove the oldest token into `out`. Returns its global index and the
    /// stall cycles, or `None` when empty.
    pub fn pop(
        &mut self,
        mem: &mut Memory,
        out: &mut Vec<Word>,
    ) -> Result<Option<(u64, u32)>, MemError> {
        if self.is_empty() {
            return Ok(None);
        }
        let addr = self.slot_addr(self.popped);
        let mut stall = 0;
        for i in 0..self.token_words {
            let (w, lat) = mem.read(addr + i)?;
            out.push(w);
            stall += lat;
        }
        let index = self.popped;
        self.popped += 1;
        Ok(Some((index, stall)))
    }

    /// Read the `idx`-th *queued* token (0 = oldest) without consuming it.
    /// Debugger inspection path: uses `peek`, no latency, no watch hits.
    pub fn peek(&self, mem: &Memory, idx: u32) -> Option<Vec<Word>> {
        if idx >= self.occupancy() {
            return None;
        }
        let addr = self.slot_addr(self.popped + u64::from(idx));
        let mut out = Vec::with_capacity(self.token_words as usize);
        for i in 0..self.token_words {
            out.push(mem.peek(addr + i).ok()?);
        }
        Some(out)
    }

    /// Overwrite the `idx`-th queued token (debugger `token set`).
    pub fn overwrite(&mut self, mem: &mut Memory, idx: u32, words: &[Word]) -> Result<(), String> {
        if idx >= self.occupancy() {
            return Err(format!(
                "token index {idx} out of range (occupancy {})",
                self.occupancy()
            ));
        }
        if words.len() as u32 != self.token_words {
            return Err(format!(
                "payload is {} words, token type needs {}",
                words.len(),
                self.token_words
            ));
        }
        let addr = self.slot_addr(self.popped + u64::from(idx));
        for (i, w) in words.iter().enumerate() {
            mem.poke(addr + i as u32, *w).map_err(|e| e.to_string())?;
        }
        Ok(())
    }

    /// Append a token from outside the dataflow (debugger `token inject`,
    /// §III "Altering the Normal Execution" — e.g. untying a deadlock).
    /// Uses `poke`: the debugger's action must not cost simulated time.
    pub fn inject(&mut self, mem: &mut Memory, words: &[Word]) -> Result<u64, String> {
        if self.is_full() {
            return Err("link is full".to_string());
        }
        if words.len() as u32 != self.token_words {
            return Err(format!(
                "payload is {} words, token type needs {}",
                words.len(),
                self.token_words
            ));
        }
        let addr = self.slot_addr(self.pushed);
        for (i, w) in words.iter().enumerate() {
            mem.poke(addr + i as u32, *w).map_err(|e| e.to_string())?;
        }
        let index = self.pushed;
        self.pushed += 1;
        Ok(index)
    }

    /// Delete the `idx`-th queued token, shifting younger tokens down
    /// (debugger `token drop`).
    pub fn remove(&mut self, mem: &mut Memory, idx: u32) -> Result<(), String> {
        let occ = self.occupancy();
        if idx >= occ {
            return Err(format!("token index {idx} out of range (occupancy {occ})"));
        }
        // Shift every younger token one slot towards the tail.
        for i in idx..occ - 1 {
            let src = self.slot_addr(self.popped + u64::from(i) + 1);
            let dst = self.slot_addr(self.popped + u64::from(i));
            for w in 0..self.token_words {
                let v = mem.peek(src + w).map_err(|e| e.to_string())?;
                mem.poke(dst + w, v).map_err(|e| e.to_string())?;
            }
        }
        self.pushed -= 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2012::memory::L2_BASE;
    use p2012::MemoryMap;

    fn setup(cap: u32, tw: u32) -> (FifoState, Memory) {
        (
            FifoState::new(L2_BASE + 64, cap, tw),
            Memory::new(MemoryMap::default()),
        )
    }

    #[test]
    fn fifo_order_is_preserved() {
        let (mut f, mut mem) = setup(4, 1);
        for v in [10, 20, 30] {
            f.push(&mut mem, &[v]).unwrap().unwrap();
        }
        assert_eq!(f.occupancy(), 3);
        let mut out = Vec::new();
        for expect in [10, 20, 30] {
            out.clear();
            let (idx, _) = f.pop(&mut mem, &mut out).unwrap().unwrap();
            assert_eq!(out, vec![expect]);
            assert_eq!(idx, (expect / 10 - 1) as u64);
        }
        assert!(f.is_empty());
        assert!(f.pop(&mut mem, &mut out).unwrap().is_none());
    }

    #[test]
    fn full_fifo_rejects_push() {
        let (mut f, mut mem) = setup(2, 1);
        assert!(f.push(&mut mem, &[1]).unwrap().is_some());
        assert!(f.push(&mut mem, &[2]).unwrap().is_some());
        assert!(f.is_full());
        assert!(f.push(&mut mem, &[3]).unwrap().is_none());
        // Global indexes keep counting after wrap-around.
        let mut out = Vec::new();
        f.pop(&mut mem, &mut out).unwrap().unwrap();
        let (idx, _) = f.push(&mut mem, &[3]).unwrap().unwrap();
        assert_eq!(idx, 2);
    }

    #[test]
    fn multi_word_tokens_round_trip() {
        let (mut f, mut mem) = setup(3, 3);
        f.push(&mut mem, &[1, 2, 3]).unwrap().unwrap();
        f.push(&mut mem, &[4, 5, 6]).unwrap().unwrap();
        assert_eq!(f.peek(&mem, 0), Some(vec![1, 2, 3]));
        assert_eq!(f.peek(&mem, 1), Some(vec![4, 5, 6]));
        assert_eq!(f.peek(&mem, 2), None);
        let mut out = Vec::new();
        f.pop(&mut mem, &mut out).unwrap().unwrap();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn inject_overwrite_remove() {
        let (mut f, mut mem) = setup(4, 1);
        f.push(&mut mem, &[1]).unwrap().unwrap();
        f.push(&mut mem, &[2]).unwrap().unwrap();
        f.push(&mut mem, &[3]).unwrap().unwrap();

        f.overwrite(&mut mem, 1, &[99]).unwrap();
        assert_eq!(f.peek(&mem, 1), Some(vec![99]));

        f.remove(&mut mem, 0).unwrap();
        assert_eq!(f.occupancy(), 2);
        assert_eq!(f.peek(&mem, 0), Some(vec![99]));
        assert_eq!(f.peek(&mem, 1), Some(vec![3]));

        let idx = f.inject(&mut mem, &[7]).unwrap();
        assert_eq!(idx, 2); // pushed counter reflects the removal
        assert_eq!(f.peek(&mem, 2), Some(vec![7]));

        assert!(f.overwrite(&mut mem, 9, &[0]).is_err());
        assert!(f.remove(&mut mem, 9).is_err());
        assert!(f.inject(&mut mem, &[0, 0]).is_err());
    }

    #[test]
    fn wraparound_keeps_payload_integrity() {
        let (mut f, mut mem) = setup(2, 2);
        let mut out = Vec::new();
        for round in 0u32..10 {
            f.push(&mut mem, &[round, round + 100]).unwrap().unwrap();
            out.clear();
            f.pop(&mut mem, &mut out).unwrap().unwrap();
            assert_eq!(out, vec![round, round + 100]);
        }
        assert_eq!(f.pushed, 10);
        assert_eq!(f.popped, 10);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use p2012::memory::L2_BASE;
    use p2012::MemoryMap;
    use proptest::prelude::*;

    // Ops: true = push(value), false = pop.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The memory-backed ring behaves exactly like a reference
        /// VecDeque under arbitrary push/pop interleavings, including
        /// wrap-around and full/empty boundary conditions.
        #[test]
        fn fifo_matches_reference_deque(
            cap in 1u32..9,
            ops in prop::collection::vec((any::<bool>(), 0u32..1000), 0..200),
        ) {
            let mut mem = Memory::new(MemoryMap::default());
            let mut f = FifoState::new(L2_BASE, cap, 1);
            let mut reference = std::collections::VecDeque::new();
            let mut out = Vec::new();
            for (is_push, v) in ops {
                if is_push {
                    let res = f.push(&mut mem, &[v]).unwrap();
                    if reference.len() == cap as usize {
                        prop_assert!(res.is_none(), "push must refuse when full");
                    } else {
                        prop_assert!(res.is_some());
                        reference.push_back(v);
                    }
                } else {
                    out.clear();
                    let res = f.pop(&mut mem, &mut out).unwrap();
                    match reference.pop_front() {
                        Some(expect) => {
                            prop_assert!(res.is_some());
                            prop_assert_eq!(out[0], expect);
                        }
                        None => prop_assert!(res.is_none()),
                    }
                }
                prop_assert_eq!(f.occupancy() as usize, reference.len());
                // peek agrees with the reference at every position.
                for (i, expect) in reference.iter().enumerate() {
                    prop_assert_eq!(
                        f.peek(&mem, i as u32),
                        Some(vec![*expect])
                    );
                }
            }
        }
    }
}
