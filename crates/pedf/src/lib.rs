//! PEDF — *Predicated Execution DataFlow* — runtime reproduction.
//!
//! The industrial dataflow framework the paper debugs (§IV): a dynamic
//! hybrid dataflow model on top of C++, with three entity classes
//! (**filters**, **controllers**, **modules**), structure-model data links
//! (indexed `pedf.io.x[n]` access) and step-based controller scheduling
//! (`ACTOR_START` / `ACTOR_SYNC` / `ACTOR_FIRE` / `WAIT_FOR_*`).
//!
//! This crate implements the framework's runtime system against the
//! [`p2012`] simulator:
//!
//! * [`graph`] — actors, connections, links ([`AppGraph`]);
//! * [`fifo`] — token FIFOs in simulated memory;
//! * [`api`] — the exported framework functions (bytecode stubs with
//!   symbols), trap numbers, and the boot-time string pool;
//! * [`policy`] — the explicit scheduler-choice seam (default election
//!   order + injected choice overrides; multiverse exploration);
//! * [`runtime`] — the trap handler: scheduling, token transport, boot;
//! * [`envio`] — host-side environment sources/sinks;
//! * [`events`] — the direct event stream (framework-cooperation ablation);
//! * [`system`] — the assembled machine a debugger attaches to.

pub mod api;
pub mod envio;
pub mod events;
pub mod fifo;
pub mod graph;
pub mod policy;
pub mod runtime;
pub mod system;

pub use api::{ApiStubs, StringPool};
pub use envio::{EnvSink, EnvSinkState, EnvSource, EnvSourceState, ValueGen};
pub use events::{EventBuffer, RuntimeEvent};
pub use fifo::FifoState;
pub use graph::{
    Actor, ActorId, ActorKind, AppGraph, ConnId, Connection, Dir, GraphError, Link, LinkClass,
    LinkId,
};
pub use policy::{ChoiceKind, ChoiceRec, DecisionPoint, SchedulePolicy, DELAYS};
pub use runtime::{FilterSched, Runtime, RuntimeState, RuntimeStats};
pub use system::System;
