//! The assembled system: platform + runtime.
//!
//! [`System`] is what a debugging session attaches to — the equivalent of
//! GDB connecting to the P2012 simulator process (bottom of Fig. 3). It
//! owns the [`p2012::Platform`] and the [`Runtime`] and advances them in
//! lock-step; the debugger crate drives it cycle by cycle, everything else
//! (examples, benchmarks) uses the bulk `run*` helpers.

use p2012::{PeId, Platform};

use crate::runtime::Runtime;

/// A booted (or bootable) PEDF machine.
#[derive(Debug, Clone)]
pub struct System {
    pub platform: Platform,
    pub runtime: Runtime,
}

impl System {
    pub fn new(platform: Platform, runtime: Runtime) -> Self {
        System { platform, runtime }
    }

    /// Fork this system into an independent copy that shares memory pages
    /// copy-on-write with `self`. Both halves diverge freely afterwards;
    /// only pages one side writes are physically duplicated. This is the
    /// cheap path for spawning many sessions from one booted baseline.
    pub fn fork(&mut self) -> System {
        System {
            platform: self.platform.fork(),
            runtime: self.runtime.clone(),
        }
    }

    /// Advance one cycle.
    pub fn step(&mut self) -> p2012::CycleReport {
        self.platform.step_cycle(&mut self.runtime)
    }

    /// Advance `cycles` cycles.
    pub fn run(&mut self, cycles: u64) -> p2012::CycleReport {
        let mut total = p2012::CycleReport::default();
        for _ in 0..cycles {
            total.merge(self.step());
        }
        total
    }

    pub fn clock(&self) -> u64 {
        self.platform.clock
    }

    /// Run the boot program at `entry` on the host PE until the framework
    /// reports boot completion (graph registered, controllers launched).
    pub fn boot(&mut self, entry: debuginfo::CodeAddr) -> Result<(), String> {
        let host = self.platform.host_id();
        self.platform.invoke(host, entry, &[]);
        for _ in 0..1_000_000u64 {
            self.step();
            if self.runtime.booted {
                return Ok(());
            }
            if let p2012::PeStatus::Faulted(f) = self.platform.pes[host.index()].status {
                return Err(format!(
                    "boot fault: {f}{}",
                    self.runtime
                        .protocol_errors
                        .last()
                        .map(|e| format!(" ({e})"))
                        .unwrap_or_default()
                ));
            }
        }
        Err("boot did not complete within 1M cycles".to_string())
    }

    /// Run until `pred` holds, at most `max_cycles`. Returns the cycle at
    /// which the predicate first held.
    pub fn run_until(
        &mut self,
        max_cycles: u64,
        mut pred: impl FnMut(&System) -> bool,
    ) -> Option<u64> {
        for _ in 0..max_cycles {
            if pred(self) {
                return Some(self.clock());
            }
            self.step();
        }
        if pred(self) {
            Some(self.clock())
        } else {
            None
        }
    }

    /// Run until the platform is quiescent (all controllers exited).
    pub fn run_to_quiescence(&mut self, max_cycles: u64) -> bool {
        self.run_until(max_cycles, |s| s.platform.is_quiescent())
            .is_some()
    }

    /// Status of the PE an actor is mapped to, for displays.
    pub fn pe_status(&self, pe: PeId) -> p2012::PeStatus {
        self.platform.pes[pe.index()].status
    }

    /// First faulted PE, if any, with its fault.
    pub fn first_fault(&self) -> Option<(PeId, p2012::VmFault)> {
        self.platform
            .pes
            .iter()
            .enumerate()
            .find_map(|(i, p)| match p.status {
                p2012::PeStatus::Faulted(f) => Some((PeId(i as u16), f)),
                _ => None,
            })
    }
}

#[cfg(test)]
mod tests {
    //! End-to-end substrate tests: a hand-assembled two-filter pipeline
    //! (the `AModule` shape of §IV-A) built directly in bytecode. This is
    //! the blueprint the ADL elaborator automates.

    use super::*;
    use crate::api::{self, ApiStubs, StringPool};
    use crate::envio::{EnvSink, EnvSource, ValueGen};
    use crate::graph::{ActorId, ConnId, LinkId};
    use crate::runtime::FilterSched;
    use debuginfo::{DebugInfoBuilder, TypeTable, Value};
    use p2012::{Insn, Platform, PlatformConfig, ProgramBuilder};

    struct Pipeline {
        sys: System,
        boot_entry: u32,
        #[allow(dead_code)]
        stubs: ApiStubs,
    }

    /// Build: module m { controller; f1 -> f2 }, f1 pushes `base + step#`,
    /// f2 pops, adds 1, prints. Controller FIREs both each step.
    fn build(max_steps: u64, f1_pushes_per_step: u32) -> Pipeline {
        let mut b = ProgramBuilder::new();
        let mut di = DebugInfoBuilder::new();
        let stubs = api::emit_stubs(&mut b, &mut di);

        // ---- filter 1 WORK: for i in 0..n { push_token(conn0, i, 7) } ----
        let f1 = b.begin_func(0);
        b.emit(Insn::Enter(1)); // local0 = i
        b.emit(Insn::Const(0));
        b.emit(Insn::StoreLocal(0));
        let loop_top = b.here();
        let done = b.new_label();
        b.emit(Insn::LoadLocal(0));
        b.emit(Insn::Const(f1_pushes_per_step));
        b.emit(Insn::LtU);
        b.jump_if_zero(done);
        b.emit(Insn::Const(0)); // conn 0
        b.emit(Insn::LoadLocal(0)); // index
        b.emit(Insn::Const(7)); // value
        b.emit(Insn::Call {
            addr: stubs.push_token,
            argc: 3,
        });
        b.emit(Insn::LoadLocal(0));
        b.emit(Insn::Const(1));
        b.emit(Insn::Add);
        b.emit(Insn::StoreLocal(0));
        b.emit(Insn::Jump(loop_top));
        b.bind(done);
        b.emit(Insn::Ret { retc: 0 });

        // ---- filter 2 WORK: v = pop(conn1, 0); print(v + 1) ----
        let f2 = b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Const(1)); // conn 1
        b.emit(Insn::Const(0)); // index
        b.emit(Insn::Call {
            addr: stubs.pop_token,
            argc: 2,
        });
        b.emit(Insn::Const(1));
        b.emit(Insn::Add);
        b.emit(Insn::Call {
            addr: stubs.print,
            argc: 1,
        });
        b.emit(Insn::Ret { retc: 0 });

        // ---- controller WORK: while continue { fire f1; fire f2; wait } --
        let ctrl = b.begin_func(0);
        b.emit(Insn::Enter(0));
        let loop_top = b.here();
        let end = b.new_label();
        b.emit(Insn::Call {
            addr: stubs.continue_,
            argc: 0,
        });
        b.jump_if_zero(end);
        b.emit(Insn::Call {
            addr: stubs.step_begin,
            argc: 0,
        });
        for actor in [2u32, 3] {
            b.emit(Insn::Const(actor));
            b.emit(Insn::Call {
                addr: stubs.actor_fire,
                argc: 1,
            });
        }
        b.emit(Insn::Call {
            addr: stubs.wait_actor_init,
            argc: 0,
        });
        b.emit(Insn::Call {
            addr: stubs.wait_actor_sync,
            argc: 0,
        });
        b.emit(Insn::Call {
            addr: stubs.step_end,
            argc: 0,
        });
        b.emit(Insn::Jump(loop_top));
        b.bind(end);
        b.emit(Insn::Ret { retc: 0 });

        // ---- boot program (host) ----
        let mut pool = StringPool::new();
        let names: Vec<usize> = ["m", "ctrl", "f1", "f2"]
            .iter()
            .map(|n| pool.intern(n))
            .collect();
        let conn_names: Vec<usize> = ["an_output", "an_input", "m_in", "m_out"]
            .iter()
            .map(|n| pool.intern(n))
            .collect();
        pool.layout(p2012::memory::L3_BASE + 0x1000);

        let boot = b.begin_func(0);
        b.emit(Insn::Enter(0));
        // register_actor(id, kind, parent1, name_addr, name_len, pe1, work1)
        let actor_rows: [(u32, u32, u32, usize, u32, u32); 4] = [
            (0, 2, 0, names[0], 0, 0),
            (1, 1, 1, names[1], 1, ctrl + 1),
            (2, 0, 1, names[2], 2, f1 + 1),
            (3, 0, 1, names[3], 3, f2 + 1),
        ];
        for (id, kind, parent1, name, pe1, work1) in actor_rows {
            let (addr, len) = pool.addr_of(name);
            for w in [id, kind, parent1, addr, len, pe1, work1] {
                b.emit(Insn::Const(w));
            }
            b.emit(Insn::Call {
                addr: stubs.register_actor,
                argc: 7,
            });
        }
        // register_conn(id, actor, dir, type, name_addr, name_len)
        let conn_rows: [(u32, u32, u32, usize); 4] = [
            (0, 2, 1, conn_names[0]), // f1.an_output (out)
            (1, 3, 0, conn_names[1]), // f2.an_input (in)
            (2, 0, 0, conn_names[2]), // m.m_in (module in)
            (3, 0, 1, conn_names[3]), // m.m_out (module out)
        ];
        for (id, actor, dir, name) in conn_rows {
            let (addr, len) = pool.addr_of(name);
            for w in [id, actor, dir, TypeTable::U32.0, addr, len] {
                b.emit(Insn::Const(w));
            }
            b.emit(Insn::Call {
                addr: stubs.register_conn,
                argc: 6,
            });
        }
        // register_link(id, from, to, capacity, class, fifo_base)
        let l1 = p2012::memory::L1_BASE + 0x100;
        for w in [0, 0, 1, 8, 0, l1] {
            b.emit(Insn::Const(w));
        }
        b.emit(Insn::Call {
            addr: stubs.register_link,
            argc: 6,
        });
        b.emit(Insn::Call {
            addr: stubs.boot_complete,
            argc: 0,
        });
        b.emit(Insn::Ret { retc: 0 });

        let prog = b.finish();
        let mut platform = Platform::new(PlatformConfig::default());
        platform.load(prog);
        pool.install(&mut platform.mem).unwrap();
        let mut runtime = Runtime::new(TypeTable::new());
        runtime.set_max_steps(ActorId(0), max_steps);
        Pipeline {
            sys: System::new(platform, runtime),
            boot_entry: boot,
            stubs,
        }
    }

    #[test]
    fn boot_registers_the_graph() {
        let mut p = build(1, 1);
        p.sys.boot(p.boot_entry).unwrap();
        let g = &p.sys.runtime.graph;
        assert_eq!(g.actors.len(), 4);
        assert_eq!(g.links.len(), 1);
        assert_eq!(g.actor_by_name("f1").unwrap().pe, Some(PeId(1)));
        assert_eq!(g.qualified_name(ActorId(3)), "m.f2");
        assert_eq!(g.link_label(LinkId(0)), "f1::an_output -> f2::an_input");
    }

    #[test]
    fn pipeline_runs_steps_and_prints() {
        let mut p = build(3, 1);
        p.sys.boot(p.boot_entry).unwrap();
        assert!(p.sys.run_to_quiescence(100_000), "did not finish");
        assert_eq!(p.sys.first_fault(), None);
        // f2 printed 7+1 once per step.
        assert_eq!(p.sys.runtime.console, vec!["8", "8", "8"]);
        assert_eq!(p.sys.runtime.module_steps(ActorId(0)), 3);
        assert_eq!(p.sys.runtime.steps_done(ActorId(2)), 3);
        assert_eq!(p.sys.runtime.stats.tokens_pushed, 3);
        assert_eq!(p.sys.runtime.stats.tokens_popped, 3);
        // Link drained.
        assert_eq!(p.sys.runtime.occupancy(LinkId(0)), 0);
    }

    #[test]
    fn rate_mismatch_accumulates_tokens() {
        // f1 pushes 3 per step, f2 consumes 1: backlog grows by 2/step —
        // the §VI-D "over/underflow" situation in miniature.
        let mut p = build(3, 3);
        p.sys.boot(p.boot_entry).unwrap();
        assert!(p.sys.run_to_quiescence(100_000));
        assert_eq!(p.sys.first_fault(), None);
        assert_eq!(p.sys.runtime.occupancy(LinkId(0)), 6);
        let tokens = p.sys.runtime.queued_tokens(&p.sys.platform.mem, LinkId(0));
        assert_eq!(tokens.len(), 6);
        assert!(tokens.iter().all(|t| t.head_word() == 7));
        let (pushed, popped) = p.sys.runtime.counters(LinkId(0));
        assert_eq!((pushed, popped), (9, 3));
    }

    #[test]
    fn starved_filter_blocks_then_deadlock_is_untied_by_injection() {
        // f1 pushes nothing; f2 blocks waiting for a token. The controller
        // blocks in WAIT_FOR_ACTOR_SYNC: a deadlock the debugger unties by
        // injecting a token (§III "Altering the Normal Execution").
        let mut p = build(1, 0);
        p.sys.boot(p.boot_entry).unwrap();
        p.sys.run(5_000);
        assert!(p.sys.platform.is_deadlocked(), "expected a deadlock");
        let f2_pe = p.sys.runtime.graph.actor(ActorId(3)).pe.unwrap();
        assert!(matches!(
            p.sys.pe_status(f2_pe),
            p2012::PeStatus::Blocked(p2012::BlockReason::TokenWait { .. })
        ));
        // Debugger-style intervention:
        let v = Value::u32(41);
        p.sys
            .runtime
            .inject_token(&mut p.sys.platform.mem, LinkId(0), &v)
            .unwrap();
        assert!(p.sys.run_to_quiescence(50_000), "still stuck");
        assert_eq!(p.sys.runtime.console, vec!["42"]);
    }

    #[test]
    fn scheduling_states_are_observable() {
        let mut p = build(2, 1);
        p.sys.boot(p.boot_entry).unwrap();
        // Right after boot, filters are not scheduled yet.
        assert_eq!(
            p.sys.runtime.filter_sched(ActorId(2)),
            FilterSched::NotScheduled
        );
        p.sys.run_to_quiescence(100_000);
        // After the run every filter came back to rest.
        assert_eq!(
            p.sys.runtime.filter_sched(ActorId(2)),
            FilterSched::NotScheduled
        );
        assert_eq!(FilterSched::Scheduled.label(), "ready");
    }

    #[test]
    fn events_stream_when_enabled() {
        use crate::events::RuntimeEvent;
        let mut p = build(1, 1);
        p.sys.runtime.events.enable();
        p.sys.boot(p.boot_entry).unwrap();
        p.sys.run_to_quiescence(100_000);
        let evs = p.sys.runtime.events.drain();
        let pushes = evs
            .iter()
            .filter(|e| matches!(e, RuntimeEvent::TokenPushed { .. }))
            .count();
        let pops = evs
            .iter()
            .filter(|e| matches!(e, RuntimeEvent::TokenPopped { .. }))
            .count();
        assert_eq!(pushes, 1);
        assert_eq!(pops, 1);
        assert!(evs
            .iter()
            .any(|e| matches!(e, RuntimeEvent::StepBegun { step: 1, .. })));
        assert!(evs
            .iter()
            .any(|e| matches!(e, RuntimeEvent::WorkEnded { .. })));
        assert!(evs.contains(&RuntimeEvent::BootComplete));
    }

    #[test]
    fn env_source_and_sink_move_boundary_tokens() {
        // Attach a source to m.m_in and a sink to m.m_out through extra
        // links... the minimal pipeline has no boundary links, so validate
        // the rejection paths instead.
        let mut p = build(1, 1);
        p.sys.boot(p.boot_entry).unwrap();
        let err = p
            .sys
            .runtime
            .add_source(EnvSource::new(ConnId(0), 1, ValueGen::Constant(1)))
            .unwrap_err();
        assert!(err.contains("not a module input"), "{err}");
        let err = p
            .sys
            .runtime
            .add_sink(EnvSink::new(ConnId(1), 1))
            .unwrap_err();
        assert!(err.contains("not a module output"), "{err}");
        // m_in exists but is unbound.
        let err = p
            .sys
            .runtime
            .add_source(EnvSource::new(ConnId(2), 1, ValueGen::Constant(1)))
            .unwrap_err();
        assert!(err.contains("unbound"), "{err}");
    }

    #[test]
    fn token_alteration_set_and_drop() {
        let mut p = build(2, 3);
        p.sys.boot(p.boot_entry).unwrap();
        p.sys.run_to_quiescence(100_000);
        // Backlog of 4 tokens (6 pushed, 2 popped).
        assert_eq!(p.sys.runtime.occupancy(LinkId(0)), 4);
        p.sys
            .runtime
            .set_token(&mut p.sys.platform.mem, LinkId(0), 2, &Value::u32(70))
            .unwrap();
        let toks = p.sys.runtime.queued_tokens(&p.sys.platform.mem, LinkId(0));
        assert_eq!(toks[2].head_word(), 70);
        p.sys
            .runtime
            .drop_token(&mut p.sys.platform.mem, LinkId(0), 0)
            .unwrap();
        assert_eq!(p.sys.runtime.occupancy(LinkId(0)), 3);
        let toks = p.sys.runtime.queued_tokens(&p.sys.platform.mem, LinkId(0));
        assert_eq!(toks[1].head_word(), 70);
        // Type mismatch rejected.
        let bad = Value::scalar(TypeTable::U8, 1);
        assert!(p
            .sys
            .runtime
            .inject_token(&mut p.sys.platform.mem, LinkId(0), &bad)
            .is_err());
    }
}
