//! Environment sources and sinks: the host side of the dataflow.
//!
//! A PEDF application's boundary connections (the module `input`/`output`
//! declarations of §IV-A) are fed and drained by the ARM host through DMA
//! and L3 (Fig. 1). We model that as rate-controlled token generators and
//! consumers attached to boundary links: a deterministic, configurable
//! substitute for the proprietary host application — the substitution is
//! recorded in DESIGN.md.
//!
//! Rates are exact (one token every `period` cycles, subject to link
//! space), which is what lets the case study set up reproducible
//! rate-mismatch bugs (Fig. 4's 20-token backlog on `pipe -> ipf`).

use debuginfo::Word;

use crate::graph::ConnId;

/// Deterministic word generator for a source.
#[derive(Debug, Clone)]
pub enum ValueGen {
    /// `start, start+step, start+2*step, ...`
    Counter { next: Word, step: Word },
    /// Repeats `values` forever.
    Cycle { values: Vec<Word>, pos: usize },
    /// Constant value.
    Constant(Word),
    /// Deterministic pseudo-random stream (LCG, full 32-bit state).
    Lcg { state: u32 },
}

impl ValueGen {
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Word {
        match self {
            ValueGen::Counter { next, step } => {
                let v = *next;
                *next = next.wrapping_add(*step);
                v
            }
            ValueGen::Cycle { values, pos } => {
                let v = values[*pos % values.len()];
                *pos += 1;
                v
            }
            ValueGen::Constant(v) => *v,
            ValueGen::Lcg { state } => {
                // Numerical Recipes LCG: deterministic and fast.
                *state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                *state
            }
        }
    }
}

/// Feeds tokens into a boundary link at a fixed rate.
#[derive(Debug, Clone)]
pub struct EnvSource {
    /// Module-level input connection this source drives.
    pub conn: ConnId,
    /// One token every `period` cycles (>= 1).
    pub period: u32,
    /// Stop after this many tokens (None = unbounded).
    pub limit: Option<u64>,
    pub produced: u64,
    pub gen: ValueGen,
    /// Cycles to wait before the first token.
    pub start_at: u64,
    /// Every value ever emitted, in emission order. The environment is
    /// outside the deterministic machine, so time travel must *replay*
    /// recorded inputs rather than pull fresh ones (the list is append-only
    /// and shared by all timelines — rewinding `produced` re-serves it).
    pub recorded: Vec<Word>,
    /// Test-only nondeterminism seed: always pull fresh values and refuse
    /// to rewind the generator, modelling an un-rewindable environment.
    /// Replays then diverge, which the REPLAY501 check must catch.
    pub re_pull: bool,
}

impl EnvSource {
    pub fn new(conn: ConnId, period: u32, gen: ValueGen) -> Self {
        assert!(period >= 1);
        EnvSource {
            conn,
            period,
            limit: None,
            produced: 0,
            gen,
            start_at: 0,
            recorded: Vec::new(),
            re_pull: false,
        }
    }

    pub fn with_limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }

    pub fn with_start(mut self, start_at: u64) -> Self {
        self.start_at = start_at;
        self
    }

    /// Test-only: disable record/replay (see [`EnvSource::re_pull`]).
    pub fn with_re_pull(mut self) -> Self {
        self.re_pull = true;
        self
    }

    /// The value of emission number `produced`. Always advances the
    /// generator (keeping it in lock-step with the emission count), but
    /// serves the recorded value when this emission already happened on a
    /// previous timeline.
    pub fn pull(&mut self) -> Word {
        let fresh = self.gen.next();
        if self.re_pull {
            return fresh;
        }
        let idx = self.produced as usize;
        if let Some(&v) = self.recorded.get(idx) {
            return v;
        }
        debug_assert_eq!(idx, self.recorded.len());
        self.recorded.push(fresh);
        fresh
    }

    /// Checkpointable state: the emission cursor plus the generator. The
    /// recording itself is append-only and shared across timelines.
    pub fn capture_state(&self) -> EnvSourceState {
        EnvSourceState {
            produced: self.produced,
            gen: self.gen.clone(),
        }
    }

    pub fn restore_state(&mut self, s: &EnvSourceState) {
        self.produced = s.produced;
        if !self.re_pull {
            self.gen = s.gen.clone();
        }
    }

    /// Should this source emit at `clock`? (The runtime also checks link
    /// space; a full link postpones the token, preserving order.)
    pub fn due(&self, clock: u64) -> bool {
        if clock < self.start_at {
            return false;
        }
        if let Some(limit) = self.limit {
            if self.produced >= limit {
                return false;
            }
        }
        // Emit when enough whole periods have elapsed for one more token.
        let elapsed = clock - self.start_at;
        self.produced < elapsed / u64::from(self.period) + 1
    }
}

/// Checkpointable part of an [`EnvSource`] (see [`EnvSource::capture_state`]).
#[derive(Debug, Clone)]
pub struct EnvSourceState {
    pub produced: u64,
    pub gen: ValueGen,
}

/// Checkpointable part of an [`EnvSink`].
#[derive(Debug, Clone)]
pub struct EnvSinkState {
    pub consumed: u64,
    pub checksum: u64,
    pub tail: Vec<Word>,
}

/// Drains tokens from a boundary link, recording a bounded tail of values
/// plus aggregate statistics for output validation.
#[derive(Debug, Clone)]
pub struct EnvSink {
    /// Module-level output connection this sink drains.
    pub conn: ConnId,
    /// Pop at most one token every `period` cycles.
    pub period: u32,
    pub consumed: u64,
    /// Wrapping checksum of the first word of every token.
    pub checksum: u64,
    /// Most recent values (bounded ring).
    pub tail: Vec<Word>,
    pub tail_cap: usize,
}

impl EnvSink {
    pub fn new(conn: ConnId, period: u32) -> Self {
        assert!(period >= 1);
        EnvSink {
            conn,
            period,
            consumed: 0,
            checksum: 0,
            tail: Vec::new(),
            tail_cap: 64,
        }
    }

    pub fn due(&self, clock: u64) -> bool {
        self.consumed < clock / u64::from(self.period) + 1
    }

    pub fn capture_state(&self) -> EnvSinkState {
        EnvSinkState {
            consumed: self.consumed,
            checksum: self.checksum,
            tail: self.tail.clone(),
        }
    }

    pub fn restore_state(&mut self, s: &EnvSinkState) {
        self.consumed = s.consumed;
        self.checksum = s.checksum;
        self.tail.clone_from(&s.tail);
    }

    pub fn record(&mut self, head_word: Word) {
        self.consumed += 1;
        self.checksum = self
            .checksum
            .wrapping_mul(31)
            .wrapping_add(u64::from(head_word));
        if self.tail.len() == self.tail_cap {
            self.tail.remove(0);
        }
        self.tail.push(head_word);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_cycle_generators() {
        let mut g = ValueGen::Counter { next: 5, step: 5 };
        assert_eq!([g.next(), g.next(), g.next()], [5, 10, 15]);
        let mut c = ValueGen::Cycle {
            values: vec![1, 2],
            pos: 0,
        };
        assert_eq!([c.next(), c.next(), c.next()], [1, 2, 1]);
    }

    #[test]
    fn lcg_is_deterministic() {
        let mut a = ValueGen::Lcg { state: 42 };
        let mut b = ValueGen::Lcg { state: 42 };
        for _ in 0..10 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn source_rate_and_limit() {
        let mut s = EnvSource::new(ConnId(0), 3, ValueGen::Constant(1)).with_limit(2);
        // clock 0: first token due
        assert!(s.due(0));
        s.produced += 1;
        assert!(!s.due(0));
        assert!(!s.due(2));
        assert!(s.due(3));
        s.produced += 1;
        // limit reached
        assert!(!s.due(100));
    }

    #[test]
    fn source_start_offset() {
        let s = EnvSource::new(ConnId(0), 1, ValueGen::Constant(0)).with_start(10);
        assert!(!s.due(9));
        assert!(s.due(10));
    }

    #[test]
    fn source_catches_up_after_full_link() {
        // If the link was full for a while, `due` stays true so the source
        // backfills at one token per cycle.
        let mut s = EnvSource::new(ConnId(0), 2, ValueGen::Constant(0));
        assert!(s.due(9)); // 5 tokens owed by clock 9, none produced
        s.produced = 4;
        assert!(s.due(9));
        s.produced = 5;
        assert!(!s.due(9));
    }

    #[test]
    fn source_replays_recorded_values_after_rewind() {
        let mut s = EnvSource::new(ConnId(0), 1, ValueGen::Lcg { state: 7 });
        let snap = s.capture_state();
        let mut first = Vec::new();
        for _ in 0..5 {
            first.push(s.pull());
            s.produced += 1;
        }
        // Rewind to the start and replay: identical values, even though the
        // generator was advanced past them.
        s.restore_state(&snap);
        for v in &first {
            assert_eq!(s.pull(), *v);
            s.produced += 1;
        }
        // Continuing past the recording stays on the original sequence.
        let a = s.pull();
        s.produced += 1;
        s.restore_state(&snap);
        for _ in 0..5 {
            s.pull();
            s.produced += 1;
        }
        assert_eq!(s.pull(), a, "6th value must match across timelines");
    }

    #[test]
    fn re_pull_source_diverges_on_replay() {
        let mut s = EnvSource::new(ConnId(0), 1, ValueGen::Lcg { state: 7 }).with_re_pull();
        let snap = s.capture_state();
        let first = s.pull();
        s.produced += 1;
        s.restore_state(&snap); // generator NOT rewound: environment moved on
        let replayed = s.pull();
        assert_ne!(first, replayed, "re-pull must not reproduce history");
    }

    #[test]
    fn sink_state_round_trips() {
        let mut k = EnvSink::new(ConnId(1), 1);
        k.record(7);
        let snap = k.capture_state();
        k.record(8);
        k.record(9);
        k.restore_state(&snap);
        assert_eq!(k.consumed, 1);
        assert_eq!(k.checksum, 7);
        assert_eq!(k.tail, vec![7]);
    }

    #[test]
    fn sink_checksum_and_tail() {
        let mut k = EnvSink::new(ConnId(1), 1);
        k.tail_cap = 2;
        for v in [7, 8, 9] {
            k.record(v);
        }
        assert_eq!(k.consumed, 3);
        assert_eq!(k.tail, vec![8, 9]);
        let expect = ((7u64 * 31) + 8) * 31 + 9;
        assert_eq!(k.checksum, expect);
    }
}
