//! Ordered per-firing IO traces, extracted from the kernel AST.
//!
//! The `dfa` kernel pass derives token *rates* (how many per firing) but
//! joins control-flow paths, deliberately forgetting *order*. Buffer
//! sizing needs order: whether `red` pushes its second token before or
//! after `pipe` can pop the first decides whether capacity 1 deadlocks.
//! This pass re-interprets the AST with the same interval lattice
//! (`dfa::interval::Iv`), but follows one concrete path wherever branches
//! are decidable and *refuses* to guess where they are not: a kernel
//! whose IO depends on an unknown condition is marked inexact and its
//! links are excluded from capacity analysis (`dfa` rule DFA007 is the
//! rate-side twin of this bail-out).
//!
//! Semantics mirrored from the PEDF runtime (`pedf::runtime`):
//!
//! * a write `pedf.io.c[i] = v` pushes exactly one token when the
//!   assignment executes (order of assignments = order of pushes);
//! * a read `pedf.io.c[i]` extends the connection's read window to index
//!   `i`, popping `i + 1 - already_popped` tokens from the FIFO (the
//!   window frees FIFO slots immediately and resets between firings).

use std::collections::HashMap;

use dfa::interval::{Iv, Tri};
use kernelc::ast::{BinOp, Block, Expr, Func, LValue, PedfExpr, Stmt, UnOp, Unit};

/// One unit token operation, in program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoOp {
    /// One token popped from the FIFO behind input connection `conn`.
    Pop { conn: String },
    /// One token pushed into the FIFO behind output connection `conn`.
    Push { conn: String },
}

impl IoOp {
    pub fn conn(&self) -> &str {
        match self {
            IoOp::Pop { conn } | IoOp::Push { conn } => conn,
        }
    }
}

/// The ordered unit-IO trace of one `work()` firing.
#[derive(Debug, Clone, Default)]
pub struct KernelTrace {
    /// Unit operations with the source line they originate from.
    pub ops: Vec<(IoOp, u32)>,
    /// True when the trace is the *only* possible firing behaviour.
    /// False when IO sat under an undecidable branch or the interpreter
    /// ran out of fuel — rates may still be derivable, order is not.
    pub exact: bool,
}

impl KernelTrace {
    /// Tokens popped per firing from `conn` (the dfa rate, re-derived
    /// from the ordered trace — the two are cross-checked in tests).
    pub fn pops(&self, conn: &str) -> u32 {
        self.count(conn, false)
    }

    /// Tokens pushed per firing into `conn`.
    pub fn pushes(&self, conn: &str) -> u32 {
        self.count(conn, true)
    }

    fn count(&self, conn: &str, push: bool) -> u32 {
        self.ops
            .iter()
            .filter(|(op, _)| matches!(op, IoOp::Push { .. }) == push && op.conn() == conn)
            .count() as u32
    }
}

const LOOP_FUEL: u32 = 256;
const CALL_DEPTH: u32 = 12;

/// Why a statement sequence stopped.
enum Flow {
    Normal,
    Return(Iv),
    Break,
    Continue,
}

struct Tracer<'a> {
    unit: &'a Unit,
    vars: HashMap<String, Iv>,
    popped: HashMap<String, u32>,
    ops: Vec<(IoOp, u32)>,
    exact: bool,
    depth: u32,
}

/// Extract the ordered IO trace of `work()` in `unit`. Helpers are
/// inlined (their IO, if any, lands in the caller's trace). Kernels with
/// no `work` function yield an empty exact trace.
pub fn trace_work(unit: &Unit) -> KernelTrace {
    let mut t = Tracer {
        unit,
        vars: HashMap::new(),
        popped: HashMap::new(),
        ops: Vec::new(),
        exact: true,
        depth: 0,
    };
    if let Some(work) = unit.funcs.iter().find(|f| f.name == "work") {
        t.exec_func(work, &[]);
    }
    KernelTrace {
        ops: t.ops,
        exact: t.exact,
    }
}

/// Does this block (recursively) contain any token IO? Used to decide
/// whether an undecidable branch poisons the trace or merely the values.
fn block_has_io(b: &Block) -> bool {
    b.stmts.iter().any(stmt_has_io)
}

fn stmt_has_io(s: &Stmt) -> bool {
    match s {
        Stmt::Decl { init, .. } => init.as_ref().is_some_and(expr_has_io),
        Stmt::Assign { target, value, .. } => {
            matches!(target, LValue::Io { .. }) || expr_has_io(value) || lvalue_has_io(target)
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            expr_has_io(cond)
                || block_has_io(then_blk)
                || else_blk.as_ref().is_some_and(block_has_io)
        }
        Stmt::While { cond, body, .. } => expr_has_io(cond) || block_has_io(body),
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            init.as_deref().is_some_and(stmt_has_io)
                || cond.as_ref().is_some_and(expr_has_io)
                || step.as_deref().is_some_and(stmt_has_io)
                || block_has_io(body)
        }
        Stmt::Return { value, .. } => value.as_ref().is_some_and(expr_has_io),
        Stmt::ExprStmt { expr, .. } => expr_has_io(expr),
        Stmt::Break { .. } | Stmt::Continue { .. } => false,
        Stmt::Nested(b) => block_has_io(b),
    }
}

fn lvalue_has_io(l: &LValue) -> bool {
    match l {
        LValue::Io { .. } => true,
        LValue::Mem(e) => expr_has_io(e),
        _ => false,
    }
}

fn expr_has_io(e: &Expr) -> bool {
    match e {
        Expr::Num(_) | Expr::Var(_) | Expr::Field(..) => false,
        Expr::Unary(_, a) => expr_has_io(a),
        Expr::Binary(_, a, b) => expr_has_io(a) || expr_has_io(b),
        // A helper call may reach IO through its body; the conservative
        // answer keeps the bail-out sound without interprocedural scans.
        Expr::Call { .. } => true,
        Expr::Pedf(p) => match p {
            PedfExpr::IoRead { .. } => true,
            PedfExpr::Mem(e) | PedfExpr::Print(e) => expr_has_io(e),
            _ => false,
        },
    }
}

impl<'a> Tracer<'a> {
    fn exec_func(&mut self, f: &Func, args: &[(String, Iv)]) -> Iv {
        let saved: Vec<_> = args
            .iter()
            .map(|(name, v)| {
                let old = self.vars.insert(name.clone(), *v);
                (name.clone(), old)
            })
            .collect();
        let flow = self.exec_block(&f.body);
        let ret = match flow {
            Flow::Return(v) => v,
            _ => Iv::top(),
        };
        for (name, old) in saved {
            match old {
                Some(v) => self.vars.insert(name, v),
                None => self.vars.remove(&name),
            };
        }
        ret
    }

    fn exec_block(&mut self, b: &Block) -> Flow {
        for s in &b.stmts {
            match self.exec_stmt(s) {
                Flow::Normal => {}
                other => return other,
            }
        }
        Flow::Normal
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Flow {
        match s {
            Stmt::Decl { name, init, .. } => {
                let v = init.as_ref().map_or(Iv::top(), |e| self.eval(e, s.line()));
                self.vars.insert(name.clone(), v);
                Flow::Normal
            }
            Stmt::Assign {
                target,
                value,
                line,
            } => {
                // The runtime evaluates the right-hand side (pops happen
                // here) before the push of an io assignment.
                let v = self.eval(value, *line);
                match target {
                    LValue::Var(name) => {
                        self.vars.insert(name.clone(), v);
                    }
                    LValue::Field(var, field) => {
                        self.vars.insert(format!("{var}.{field}"), v);
                    }
                    LValue::Io { conn, index } => {
                        // One token per executed assignment, whatever the
                        // index (the runtime pushes token-at-a-time).
                        self.eval(index, *line);
                        self.ops.push((IoOp::Push { conn: conn.clone() }, *line));
                    }
                    LValue::Data(name) => {
                        self.vars.insert(format!("pedf.data.{name}"), v);
                    }
                    LValue::Attr(name) => {
                        self.vars.insert(format!("pedf.attr.{name}"), v);
                    }
                    LValue::Mem(addr) => {
                        self.eval(addr, *line);
                    }
                }
                Flow::Normal
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                line,
            } => {
                let c = self.eval(cond, *line);
                match c.truth() {
                    Tri::True => self.exec_block(then_blk),
                    Tri::False => match else_blk {
                        Some(b) => self.exec_block(b),
                        None => Flow::Normal,
                    },
                    Tri::Maybe => {
                        if block_has_io(then_blk) || else_blk.as_ref().is_some_and(block_has_io) {
                            // Token order depends on data we cannot see.
                            self.exact = false;
                            return Flow::Return(Iv::top());
                        }
                        // No IO at stake: run both arms on the same store
                        // and join the resulting values.
                        let before = self.vars.clone();
                        let ft = self.exec_block(then_blk);
                        let after_then = std::mem::replace(&mut self.vars, before);
                        let fe = match else_blk {
                            Some(b) => self.exec_block(b),
                            None => Flow::Normal,
                        };
                        for (k, v) in after_then {
                            let joined = match self.vars.get(&k) {
                                Some(w) => Iv::join(v, *w),
                                None => Iv::top(),
                            };
                            self.vars.insert(k, joined);
                        }
                        // Divergent early exits on an unknown branch lose
                        // path sensitivity; fall through pessimistically.
                        let (_, _) = (ft, fe);
                        Flow::Normal
                    }
                }
            }
            Stmt::While { cond, body, line } => self.exec_loop(None, Some(cond), None, body, *line),
            Stmt::For {
                init,
                cond,
                step,
                body,
                line,
            } => {
                if let Some(i) = init {
                    if let f @ (Flow::Return(_) | Flow::Break | Flow::Continue) = self.exec_stmt(i)
                    {
                        return f;
                    }
                }
                self.exec_loop(None, cond.as_ref(), step.as_deref(), body, *line)
            }
            Stmt::Return { value, line } => {
                let v = value.as_ref().map_or(Iv::top(), |e| self.eval(e, *line));
                Flow::Return(v)
            }
            Stmt::ExprStmt { expr, line } => {
                self.eval(expr, *line);
                Flow::Normal
            }
            Stmt::Break { .. } => Flow::Break,
            Stmt::Continue { .. } => Flow::Continue,
            Stmt::Nested(b) => self.exec_block(b),
        }
    }

    fn exec_loop(
        &mut self,
        _init: Option<()>,
        cond: Option<&Expr>,
        step: Option<&Stmt>,
        body: &Block,
        line: u32,
    ) -> Flow {
        let mut fuel = LOOP_FUEL;
        loop {
            let truth = match cond {
                Some(c) => self.eval(c, line).truth(),
                None => Tri::True,
            };
            match truth {
                Tri::False => return Flow::Normal,
                Tri::Maybe => {
                    if block_has_io(body) || step.is_some_and(stmt_has_io) {
                        self.exact = false;
                        return Flow::Return(Iv::top());
                    }
                    // Unknown trip count without IO: havoc everything the
                    // loop could have written and move on.
                    self.havoc();
                    return Flow::Normal;
                }
                Tri::True => {}
            }
            if fuel == 0 {
                // A provably-spinning (or too-deep) loop; order beyond
                // here is unknowable within budget.
                self.exact = false;
                return Flow::Return(Iv::top());
            }
            fuel -= 1;
            match self.exec_block(body) {
                Flow::Break => return Flow::Normal,
                Flow::Return(v) => return Flow::Return(v),
                Flow::Normal | Flow::Continue => {}
            }
            if let Some(s) = step {
                if let Flow::Return(v) = self.exec_stmt(s) {
                    return Flow::Return(v);
                }
            }
        }
    }

    fn havoc(&mut self) {
        for v in self.vars.values_mut() {
            *v = Iv::top();
        }
    }

    fn eval(&mut self, e: &Expr, line: u32) -> Iv {
        match e {
            Expr::Num(n) => Iv::exact(i64::from(*n)),
            Expr::Var(name) => self.vars.get(name).copied().unwrap_or_else(Iv::top),
            Expr::Field(var, field) => self
                .vars
                .get(&format!("{var}.{field}"))
                .copied()
                .unwrap_or_else(Iv::top),
            Expr::Unary(op, a) => {
                let v = self.eval(a, line);
                match op {
                    UnOp::Neg => Iv::sub(Iv::exact(0), v),
                    UnOp::Not => match v.truth() {
                        Tri::True => Iv::exact(0),
                        Tri::False => Iv::exact(1),
                        Tri::Maybe => Iv::boolean(),
                    },
                    UnOp::BitNot => Iv::top(),
                }
            }
            Expr::Binary(op, a, b) => {
                let x = self.eval(a, line);
                let y = self.eval(b, line);
                match op {
                    BinOp::Add => Iv::add(x, y),
                    BinOp::Sub => Iv::sub(x, y),
                    BinOp::Mul => Iv::mul(x, y),
                    BinOp::Div => Iv::div(x, y),
                    BinOp::Rem => Iv::rem(x, y),
                    BinOp::BitAnd => Iv::bit_op(x, y, |a, b| a & b),
                    BinOp::BitOr => Iv::bit_op(x, y, |a, b| a | b),
                    BinOp::BitXor => Iv::bit_op(x, y, |a, b| a ^ b),
                    BinOp::Shl => Iv::shl(x, y),
                    BinOp::Shr => Iv::shr(x, y),
                    BinOp::Lt => Iv::lt(x, y),
                    BinOp::Le => Iv::le(x, y),
                    BinOp::Gt => Iv::lt(y, x),
                    BinOp::Ge => Iv::le(y, x),
                    BinOp::Eq => Iv::eq(x, y),
                    BinOp::Ne => match Iv::eq(x, y).truth() {
                        Tri::True => Iv::exact(0),
                        Tri::False => Iv::exact(1),
                        Tri::Maybe => Iv::boolean(),
                    },
                    BinOp::LAnd => match (x.truth(), y.truth()) {
                        (Tri::False, _) | (_, Tri::False) => Iv::exact(0),
                        (Tri::True, Tri::True) => Iv::exact(1),
                        _ => Iv::boolean(),
                    },
                    BinOp::LOr => match (x.truth(), y.truth()) {
                        (Tri::True, _) | (_, Tri::True) => Iv::exact(1),
                        (Tri::False, Tri::False) => Iv::exact(0),
                        _ => Iv::boolean(),
                    },
                }
            }
            Expr::Call { name, args } => {
                let vals: Vec<Iv> = args.iter().map(|a| self.eval(a, line)).collect();
                let Some(f) = self.unit.funcs.iter().find(|f| &f.name == name) else {
                    return Iv::top();
                };
                if self.depth >= CALL_DEPTH || f.params.len() != vals.len() {
                    self.exact = self.exact && !block_has_io(&f.body);
                    return Iv::top();
                }
                let bound: Vec<(String, Iv)> =
                    f.params.iter().map(|(n, _)| n.clone()).zip(vals).collect();
                self.depth += 1;
                let r = self.exec_func(f, &bound);
                self.depth -= 1;
                r
            }
            Expr::Pedf(p) => match p {
                PedfExpr::IoRead { conn, index } => {
                    let idx = self.eval(index, line);
                    match idx.as_exact() {
                        Some(i) if i >= 0 => {
                            let p = self.popped.entry(conn.clone()).or_insert(0);
                            let want = (i as u32) + 1;
                            while *p < want {
                                *p += 1;
                                self.ops.push((IoOp::Pop { conn: conn.clone() }, line));
                            }
                        }
                        _ => {
                            // Data-dependent read index: pop count unknown.
                            self.exact = false;
                        }
                    }
                    Iv::top()
                }
                PedfExpr::Data(name) => self
                    .vars
                    .get(&format!("pedf.data.{name}"))
                    .copied()
                    .unwrap_or_else(Iv::top),
                PedfExpr::Attr(name) => self
                    .vars
                    .get(&format!("pedf.attr.{name}"))
                    .copied()
                    .unwrap_or_else(Iv::top),
                PedfExpr::Mem(addr) => {
                    self.eval(addr, line);
                    Iv::top()
                }
                PedfExpr::Print(e) => {
                    self.eval(e, line);
                    Iv::top()
                }
                PedfExpr::Available(_) | PedfExpr::Space(_) => Iv::top(),
                // Controller scheduling primitives never appear in filter
                // kernels; seeing one means the trace is not a firing.
                PedfExpr::Run
                | PedfExpr::Start(_)
                | PedfExpr::Sync(_)
                | PedfExpr::Fire(_)
                | PedfExpr::WaitInit
                | PedfExpr::WaitSync
                | PedfExpr::StepBegin
                | PedfExpr::StepEnd => {
                    self.exact = false;
                    Iv::top()
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Unit {
        kernelc::parser::parse(src, &|n| n == "CbCrMB_t").expect("kernel parses")
    }

    fn ops(t: &KernelTrace) -> Vec<String> {
        t.ops
            .iter()
            .map(|(op, _)| match op {
                IoOp::Pop { conn } => format!("pop {conn}"),
                IoOp::Push { conn } => format!("push {conn}"),
            })
            .collect()
    }

    #[test]
    fn straight_line_io_is_traced_in_program_order() {
        let t = trace_work(&parse(
            "void work() {
    U32 a = pedf.io.x[0];
    pedf.io.out[0] = a + 1;
    U32 b = pedf.io.x[1];
    pedf.io.out2[0] = b;
}",
        ));
        assert!(t.exact);
        assert_eq!(ops(&t), ["pop x", "push out", "pop x", "push out2"]);
    }

    #[test]
    fn window_reads_pop_up_to_the_index_once() {
        // Reading [1] after [0] pops once more; re-reading [0] pops none.
        let t = trace_work(&parse(
            "void work() {
    U32 a = pedf.io.x[1];
    U32 b = pedf.io.x[0];
    pedf.io.out[0] = a + b;
}",
        ));
        assert!(t.exact);
        assert_eq!(ops(&t), ["pop x", "pop x", "push out"]);
        assert_eq!(t.pops("x"), 2);
        assert_eq!(t.pushes("out"), 1);
    }

    #[test]
    fn constant_loops_unroll_exactly() {
        let t = trace_work(&parse(
            "void work() {
    U32 i;
    for (i = 0; i < 3; i = i + 1) {
        pedf.io.out[i] = i;
    }
}",
        ));
        assert!(t.exact);
        assert_eq!(ops(&t), ["push out", "push out", "push out"]);
    }

    #[test]
    fn unknown_branch_without_io_stays_exact() {
        let t = trace_work(&parse(
            "U32 clip(U32 v) {
    if (v > 255) { return 255; }
    return v;
}
void work() {
    U32 a = pedf.io.x[0];
    pedf.io.out[0] = clip(a * 2);
}",
        ));
        assert!(t.exact, "branch on token value has no IO inside");
        assert_eq!(ops(&t), ["pop x", "push out"]);
    }

    #[test]
    fn io_under_unknown_branch_poisons_the_trace() {
        let t = trace_work(&parse(
            "void work() {
    U32 a = pedf.io.x[0];
    if (a > 10) {
        pedf.io.out[0] = a;
    }
}",
        ));
        assert!(!t.exact);
    }

    #[test]
    fn data_dependent_loop_with_io_poisons_the_trace() {
        let t = trace_work(&parse(
            "void work() {
    U32 n = pedf.io.x[0];
    U32 i;
    for (i = 0; i < n; i = i + 1) {
        pedf.io.out[0] = i;
    }
}",
        ));
        assert!(!t.exact);
    }
}
