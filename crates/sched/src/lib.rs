//! `sched` — static schedule, buffer-sizing and WCET analysis for PEDF
//! dataflow applications.
//!
//! A whole-program performance pass composing the existing analyses:
//!
//! 1. **IO traces** ([`trace`]) — ordered per-firing push/pop sequences
//!    per kernel, re-interpreted from the kernelc AST with the `dfa`
//!    interval lattice.
//! 2. **Buffer sizing** ([`capacity`]) — Parks-style minimal
//!    deadlock-free FIFO capacities by abstract KPN simulation, reported
//!    as `SCH501` (capacity below minimum: will deadlock) and `SCH502`
//!    (capacity above minimum: wasted SRAM).
//! 3. **WCET** ([`wcet`]) — per-kernel cycle intervals by bounded
//!    abstract execution of the linked bytecode against the p2012 cost
//!    model; unbounded worst cases surface as `WCET601`.
//! 4. **Throughput** ([`throughput`]) — the SDF repetition vector and a
//!    sound steady-state period bound with its bottleneck actor
//!    (`SCH503`/`SCH504`), painted onto `graph dot` output.
//!
//! Everything is reported as [`debuginfo::Finding`]s through the same
//! pipeline as `dfa` and `bcv`, so `analyze`, the REPL and the remote
//! server surface the results uniformly — and the claims are *testable*:
//! `analyze --sched-check` replays the predicted capacities on the real
//! simulator and fails if the static story and the dynamic behaviour
//! disagree.

use std::collections::{BTreeMap, BTreeSet};

use debuginfo::LineTable;
use mind::{CompiledApp, SourceRegistry};
use pedf::graph::ActorKind;
use pedf::{ActorId, AppGraph};

pub mod capacity;
pub mod throughput;
pub mod trace;
pub mod wcet;

pub use debuginfo::{render_findings, Finding, Severity, Span};
pub use wcet::CycleBounds;

/// Stable rule identifiers. `SCH5xx` = schedule/buffer findings,
/// `WCET6xx` = execution-time findings.
pub mod rules {
    /// A FIFO capacity below the minimal deadlock-free size.
    pub const CAPACITY_BELOW_MIN: &str = "SCH501";
    /// A FIFO capacity above the minimal deadlock-free size.
    pub const CAPACITY_ABOVE_MIN: &str = "SCH502";
    /// The static throughput bound for the steady state.
    pub const THROUGHPUT_BOUND: &str = "SCH503";
    /// The critical-cycle bottleneck actor.
    pub const BOTTLENECK: &str = "SCH504";
    /// A worst-case execution time that could not be bounded.
    pub const WCET_UNBOUNDED: &str = "WCET601";

    /// `(id, one-line summary)` for every rule, in id order — kept in
    /// lock-step with `debuginfo::registry` (pinned by a drift test).
    pub const ALL: &[(&str, &str)] = &[
        (
            CAPACITY_BELOW_MIN,
            "FIFO capacity below the minimal deadlock-free size",
        ),
        (
            CAPACITY_ABOVE_MIN,
            "FIFO capacity above the minimal deadlock-free size",
        ),
        (
            THROUGHPUT_BOUND,
            "static throughput bound for the steady state",
        ),
        (BOTTLENECK, "critical-cycle bottleneck actor"),
        (
            WCET_UNBOUNDED,
            "worst-case execution time unbounded (interval widened)",
        ),
    ];
}

/// Everything the analyzer needs, detached from the live machine.
/// Build one with [`AnalysisInput::from_app`] *before* handing the
/// [`CompiledApp`] to a debug session.
#[derive(Debug, Clone, Default)]
pub struct AnalysisInput {
    pub graph: AppGraph,
    /// Struct type names usable in kernel declarations.
    pub struct_types: BTreeSet<String>,
    /// Actor → (kernel file name, kernel source).
    pub kernels: BTreeMap<ActorId, (String, String)>,
    /// The linked bytecode image (for WCET).
    pub program: p2012::Program,
    /// The elaborated memory layout (for access latencies).
    pub mem_map: p2012::MemoryMap,
}

impl AnalysisInput {
    pub fn from_app(app: &CompiledApp, sources: &SourceRegistry) -> AnalysisInput {
        let struct_types = (0..app.types.len())
            .map(|i| debuginfo::TypeId(i as u32))
            .filter(|&id| !app.types.is_scalar(id))
            .map(|id| app.types.name(id).to_string())
            .collect();
        let kernels = app
            .kernel_files
            .iter()
            .filter_map(|(aid, file)| {
                sources
                    .get(file)
                    .map(|src| (*aid, (file.clone(), src.to_string())))
            })
            .collect();
        AnalysisInput {
            graph: app.graph.clone(),
            struct_types,
            kernels,
            program: app.program.clone(),
            mem_map: app.mem_map.clone(),
        }
    }
}

/// The combined result of the three passes.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, sorted most severe first (then rule id, subject).
    pub findings: Vec<Finding>,
    /// Minimal deadlock-free capacity per analyzed link id. Empty when no
    /// link qualified or the deadlock was structural.
    pub min_caps: BTreeMap<u32, u32>,
    /// `true` when the abstract network deadlocks regardless of capacity
    /// (a starvation cycle — dfa's DFA004 names the cycle).
    pub structural: bool,
    /// Filters whose IO traces were inexact (excluded from sizing).
    pub inexact: BTreeSet<u32>,
    /// Cycles per graph iteration no schedule can beat (0 = unknown).
    pub period_lb: u64,
    /// Actor attaining the bound.
    pub bottleneck: Option<u32>,
    /// Actor/link ids of the bottleneck's dependency cycle (graphviz:
    /// bold).
    pub bold_actors: BTreeSet<u32>,
    pub bold_links: BTreeSet<u32>,
    /// Per-filter cycle bounds (actor id → interval).
    pub wcet: BTreeMap<u32, CycleBounds>,
}

impl Report {
    /// Highest severity present, `None` when the report is clean.
    pub fn worst(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Render the findings table (shared format with the debugger CLI).
    pub fn table(&self) -> String {
        render_findings(&self.findings)
    }

    /// Resolve every finding span to a code address through the program's
    /// line tables, making findings clickable debugger locations.
    pub fn resolve_spans(&mut self, lines: &LineTable) {
        for f in &mut self.findings {
            if let Some(sp) = &mut f.span {
                sp.resolve(lines);
            }
        }
    }

    /// `"producer_actor::conn" → capacity` rendering of [`Self::min_caps`]
    /// — the key syntax `mind::build_with_caps` consumes, so the
    /// differential gate can rebuild the application at (or just below)
    /// the predicted sizes.
    pub fn min_caps_by_label(&self, g: &AppGraph) -> BTreeMap<String, u32> {
        self.min_caps
            .iter()
            .map(|(&l, &cap)| {
                let link = g.link(pedf::LinkId(l));
                let conn = g.conn(link.from);
                let actor = g.actor(conn.actor);
                (format!("{}::{}", actor.name, conn.name), cap)
            })
            .collect()
    }
}

/// Run all passes over `input` and return the merged, sorted report.
pub fn analyze(input: &AnalysisInput) -> Report {
    let mut report = Report::default();
    let is_type = |s: &str| input.struct_types.contains(s);

    // Pass 1: ordered IO traces for every filter kernel that parses.
    // (Parse failures are dfa's KC001; this pass just skips them.)
    let mut traces: BTreeMap<u32, trace::KernelTrace> = BTreeMap::new();
    let mut units: BTreeMap<u32, kernelc::ast::Unit> = BTreeMap::new();
    for (aid, (_file, src)) in &input.kernels {
        let Some(actor) = input.graph.actors.get(aid.0 as usize) else {
            continue;
        };
        if actor.kind != ActorKind::Filter {
            continue;
        }
        if let Ok(unit) = kernelc::parser::parse(src, &is_type) {
            let t = trace::trace_work(&unit);
            if !t.exact {
                report.inexact.insert(aid.0);
            }
            traces.insert(aid.0, t);
            units.insert(aid.0, unit);
        }
    }

    // Pass 2: minimal deadlock-free capacities, compared to elaboration.
    let model = capacity::build_model(&input.graph, &traces);
    if !model.links.is_empty() {
        match capacity::minimal_caps(&model) {
            None => report.structural = true,
            Some(caps) => {
                for (&lid, &min) in &caps {
                    let link = input.graph.link(pedf::LinkId(lid));
                    let label = input.graph.link_label(link.id);
                    let have = link.capacity;
                    if have < min {
                        let mut f = Finding::new(
                            rules::CAPACITY_BELOW_MIN,
                            Severity::Error,
                            label,
                            format!(
                                "capacity {have} is below the minimal \
                                 deadlock-free size {min}: the network wedges"
                            ),
                        );
                        if let Some(span) = first_push_span(input, &traces, link.from) {
                            f = f.with_span(span);
                        }
                        report.findings.push(f);
                    } else if have > min {
                        report.findings.push(Finding::new(
                            rules::CAPACITY_ABOVE_MIN,
                            Severity::Info,
                            label,
                            format!(
                                "capacity {have} exceeds the minimal \
                                 deadlock-free size {min}"
                            ),
                        ));
                    }
                }
                report.min_caps = caps;
            }
        }
    }

    // Pass 3: per-kernel cycle bounds over the linked image.
    for a in input.graph.filters() {
        let Some(entry) = a.work_addr else { continue };
        let b = wcet::analyze_entry(&input.program, &input.mem_map, entry);
        if b.wcet.is_none() {
            report.findings.push(Finding::new(
                rules::WCET_UNBOUNDED,
                Severity::Warning,
                input.graph.qualified_name(a.id),
                format!(
                    "worst-case cycles per firing unbounded within budget \
                     (best case {} cycles)",
                    b.bcet
                ),
            ));
        }
        report.wcet.insert(a.id.0, b);
    }

    // Pass 4: repetition vector and throughput bound.
    let mut rates: BTreeMap<u32, BTreeMap<String, (u32, u32)>> = BTreeMap::new();
    for (&aid, t) in &traces {
        if !t.exact {
            continue;
        }
        let actor = &input.graph.actors[aid as usize];
        let per_conn = actor
            .conns()
            .map(|c| {
                let name = input.graph.conn(c).name.clone();
                let r = (t.pushes(&name), t.pops(&name));
                (name, r)
            })
            .collect();
        rates.insert(aid, per_conn);
    }
    if let Some(reps) = throughput::repetition_vector(&input.graph, &rates) {
        let t = throughput::analyze(&input.graph, &reps, &report.wcet);
        if t.period_lb > 0 {
            report.findings.push(Finding::new(
                rules::THROUGHPUT_BOUND,
                Severity::Info,
                "steady state",
                format!(
                    "no schedule completes a graph iteration in fewer than \
                     {} cycles",
                    t.period_lb
                ),
            ));
            if let Some(b) = t.bottleneck {
                let bounds = report.wcet[&b];
                report.findings.push(Finding::new(
                    rules::BOTTLENECK,
                    Severity::Info,
                    input.graph.qualified_name(ActorId(b)),
                    format!(
                        "critical-cycle bottleneck: rep {} x {} cycles per \
                         firing dominates the period",
                        reps.get(&b).copied().unwrap_or(1),
                        bounds.bcet
                    ),
                ));
            }
            report.period_lb = t.period_lb;
            report.bottleneck = t.bottleneck;
            report.bold_actors = t.cycle_actors;
            report.bold_links = t.cycle_links;
        }
    }

    debuginfo::sort_and_dedup_findings(&mut report.findings);
    report
}

/// Span of the producer's first push on the connection — the statement
/// whose execution will wedge when the FIFO is undersized.
fn first_push_span(
    input: &AnalysisInput,
    traces: &BTreeMap<u32, trace::KernelTrace>,
    from_conn: pedf::ConnId,
) -> Option<Span> {
    let conn = input.graph.conn(from_conn);
    let t = traces.get(&conn.actor.0)?;
    let line = t.ops.iter().find_map(|(op, line)| match op {
        trace::IoOp::Push { conn: c } if c == &conn.name => Some(*line),
        _ => None,
    })?;
    let (file, _) = input.kernels.get(&conn.actor)?;
    Some(Span::new(file.clone(), line, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use debuginfo::TypeTable;
    use pedf::graph::{Dir, LinkClass};

    /// Two filters in one module wired by `(prod_conn, cons_conn, cap)`
    /// links, with kernel sources attached — no bytecode (WCET skipped).
    fn tiny_input(links: &[(&str, &str, u32)], src_a: &str, src_b: &str) -> AnalysisInput {
        let mut g = AppGraph::new();
        let root = g
            .register_actor(0, "root", ActorKind::Module, None, None, None)
            .unwrap();
        let m = g
            .register_actor(1, "m", ActorKind::Module, Some(root), None, None)
            .unwrap();
        let a = g
            .register_actor(2, "a", ActorKind::Filter, Some(m), None, None)
            .unwrap();
        let b = g
            .register_actor(3, "b", ActorKind::Filter, Some(m), None, None)
            .unwrap();
        for (i, (prod, cons, cap)) in links.iter().enumerate() {
            let i = i as u32;
            let o = g
                .register_conn(2 * i, a, prod, Dir::Out, TypeTable::U32)
                .unwrap();
            let inp = g
                .register_conn(2 * i + 1, b, cons, Dir::In, TypeTable::U32)
                .unwrap();
            g.register_link(i, o, inp, *cap, LinkClass::Data, 0)
                .unwrap();
        }
        let mut kernels = BTreeMap::new();
        kernels.insert(ActorId(2), ("a.c".to_string(), src_a.to_string()));
        kernels.insert(ActorId(3), ("b.c".to_string(), src_b.to_string()));
        AnalysisInput {
            graph: g,
            struct_types: BTreeSet::new(),
            kernels,
            program: p2012::Program::default(),
            mem_map: p2012::MemoryMap::default(),
        }
    }

    #[test]
    fn oversized_fifo_reports_sch502_with_the_minimum() {
        let input = tiny_input(
            &[("out", "inp", 16)],
            "void work() { pedf.io.out[0] = 1; }",
            "void work() { U32 v = pedf.io.inp[0]; pedf.print(v); }",
        );
        let r = analyze(&input);
        let f = r
            .findings
            .iter()
            .find(|f| f.rule == rules::CAPACITY_ABOVE_MIN)
            .expect("SCH502");
        assert_eq!(f.severity, Severity::Info);
        assert!(f.message.contains("16"), "{}", f.message);
        assert_eq!(r.min_caps[&0], 1);
        assert_eq!(r.min_caps_by_label(&input.graph)["a::out"], 1);
    }

    #[test]
    fn undersized_gated_fifo_reports_sch501_at_the_push() {
        // The gated-burst shape from `capacity`: the burst link needs two
        // slots, but elaboration gave it one.
        let input = tiny_input(
            &[("a_out", "a_in", 1), ("g_out", "g_in", 1)],
            "void work() {
    pedf.io.a_out[0] = 1;
    pedf.io.a_out[1] = 2;
    pedf.io.g_out[0] = 3;
}",
            "void work() {
    U32 g = pedf.io.g_in[0];
    U32 a = pedf.io.a_in[1];
    pedf.print(a + g);
}",
        );
        let r = analyze(&input);
        assert_eq!(r.worst(), Some(Severity::Error), "{}", r.table());
        let f = r
            .findings
            .iter()
            .find(|f| f.rule == rules::CAPACITY_BELOW_MIN)
            .expect("SCH501");
        assert_eq!(f.subject, "a::a_out -> b::a_in");
        let span = f.span.as_ref().expect("anchored at the first push");
        assert_eq!(span.file, "a.c");
        assert_eq!(span.line, 2);
        assert_eq!(r.min_caps[&0], 2);
        assert_eq!(r.min_caps[&1], 1);
    }

    #[test]
    fn inexact_kernels_are_listed_not_guessed() {
        let input = tiny_input(
            &[("out", "inp", 4)],
            "void work() { U32 n = pedf.data.k; if (n > 2) { pedf.io.out[0] = 1; } }",
            "void work() { U32 v = pedf.io.inp[0]; pedf.print(v); }",
        );
        let r = analyze(&input);
        assert!(r.inexact.contains(&2));
        assert!(r.min_caps.is_empty(), "no analyzed links");
        assert!(!r.findings.iter().any(|f| f.rule.starts_with("SCH5")));
    }

    #[test]
    fn rules_table_matches_the_registry() {
        for (id, summary) in rules::ALL {
            let r = debuginfo::registry::find(id).expect("registered");
            assert_eq!(r.summary, *summary, "{id} drifted");
        }
    }
}
