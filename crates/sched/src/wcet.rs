//! Per-kernel execution-time intervals over the linked bytecode.
//!
//! A bounded abstract execution of each filter's `work` function, in the
//! style of `bcv::image` but tracking *cycles* instead of stack shape:
//! values are `dfa::interval::Iv`, decidable branches are followed (so
//! constant-bound loops unroll exactly), undecidable branches fork both
//! arms under a global state budget, calls are inlined with a depth
//! limit, and every instruction is priced by the platform cost tables
//! (`p2012::cost`) — including the L1/L2/L3 latency of raw memory
//! accesses, bounded through the address interval on the stack, and the
//! nominal cost of runtime stub traps. Blocking time is scheduling, not
//! computation, and is excluded.
//!
//! When the budget runs out (an input-dependent loop), the upper bound
//! is widened to "unbounded" — surfaced as the WCET601 warning — while
//! the best case keeps the minimum over completed paths, which is the
//! only direction the throughput bound needs to stay sound.

use dfa::interval::{Iv, Tri};
use p2012::{cost, CodeAddr, Insn, MemoryMap, Program};

/// Execution-time interval of one firing, in cycles. `wcet == None`
/// means the worst case could not be bounded within budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleBounds {
    pub bcet: u64,
    pub wcet: Option<u64>,
}

/// Abstract steps explored per kernel before widening to unbounded.
const STATE_BUDGET: u32 = 50_000;

/// Inlining depth for calls (mirrors the VM's frame headroom).
const FRAME_BUDGET: usize = 12;

#[derive(Clone)]
struct AbsFrame {
    locals: Vec<Iv>,
    stack: Vec<Iv>,
    ret_pc: CodeAddr,
}

#[derive(Clone)]
struct AbsState {
    pc: CodeAddr,
    frames: Vec<AbsFrame>,
    cost: (u64, u64),
}

impl AbsState {
    fn frame(&mut self) -> &mut AbsFrame {
        self.frames.last_mut().expect("at least the entry frame")
    }

    fn pop(&mut self) -> Iv {
        self.frame().stack.pop().unwrap_or_else(Iv::top)
    }

    fn push(&mut self, v: Iv) {
        self.frame().stack.push(v);
    }

    /// Address interval on the stack for a `LoadMem`/`StoreMem` about to
    /// execute (the address sits under the value for stores).
    fn mem_addr_bounds(&self, insn: &Insn) -> Option<(u32, u32)> {
        let depth = match insn {
            Insn::LoadMem => 1,
            Insn::StoreMem => 2,
            _ => return None,
        };
        let stack = &self.frames.last()?.stack;
        let addr = stack.get(stack.len().checked_sub(depth)?)?;
        let lo = u32::try_from(addr.lo.max(0)).ok()?;
        let hi = u32::try_from(addr.hi).ok()?;
        Some((lo, hi))
    }
}

enum Step {
    Continue(CodeAddr),
    Fork(CodeAddr, CodeAddr),
    Finished,
    Stuck,
}

/// Analyze one firing starting at `entry` (a `work` function address).
pub fn analyze_entry(program: &Program, map: &MemoryMap, entry: CodeAddr) -> CycleBounds {
    let mut work: Vec<AbsState> = vec![AbsState {
        pc: entry,
        frames: vec![AbsFrame {
            locals: Vec::new(),
            stack: Vec::new(),
            ret_pc: 0,
        }],
        cost: (0, 0),
    }];
    let mut done: Vec<(u64, u64)> = Vec::new();
    let mut budget = STATE_BUDGET;
    let mut widened = false;

    while let Some(mut st) = work.pop() {
        loop {
            if budget == 0 {
                widened = true;
                work.clear();
                break;
            }
            budget -= 1;
            let Some(insn) = program.fetch(st.pc) else {
                // Fell off the image: bcv's BCV203, not our finding;
                // drop the path.
                break;
            };
            let addr_bounds = st.mem_addr_bounds(&insn);
            let (lo, hi) = cost::insn_cost(map, &insn, addr_bounds);
            st.cost.0 += u64::from(lo);
            st.cost.1 += u64::from(hi);
            let next = st.pc + 1;
            match step(&mut st, &insn, next) {
                Step::Continue(pc) => st.pc = pc,
                Step::Fork(a, b) => {
                    let mut other = st.clone();
                    other.pc = b;
                    work.push(other);
                    st.pc = a;
                }
                Step::Finished => {
                    done.push(st.cost);
                    break;
                }
                Step::Stuck => {
                    // Call too deep or malformed frame: the true cost
                    // from here is unknowable.
                    widened = true;
                    break;
                }
            }
        }
    }

    let bcet = done.iter().map(|c| c.0).min().unwrap_or(1);
    let wcet = if widened {
        None
    } else {
        done.iter().map(|c| c.1).max()
    };
    CycleBounds { bcet, wcet }
}

fn step(st: &mut AbsState, insn: &Insn, next: CodeAddr) -> Step {
    match *insn {
        Insn::Enter(n) => {
            // Fresh locals are zero in the VM.
            let f = st.frame();
            if f.locals.len() <= n as usize {
                f.locals.resize(n as usize, Iv::exact(0));
            }
            Step::Continue(next)
        }
        Insn::Const(w) => {
            st.push(Iv::exact(i64::from(w)));
            Step::Continue(next)
        }
        Insn::LoadLocal(n) => {
            let v = st
                .frame()
                .locals
                .get(n as usize)
                .copied()
                .unwrap_or_else(Iv::top);
            st.push(v);
            Step::Continue(next)
        }
        Insn::StoreLocal(n) => {
            let v = st.pop();
            let f = st.frame();
            if (n as usize) < f.locals.len() {
                f.locals[n as usize] = v;
            }
            Step::Continue(next)
        }
        Insn::LoadLocalIdx(base) => {
            let off = st.pop();
            let f = st.frame();
            let v = match off.as_exact() {
                Some(o) if o >= 0 => f
                    .locals
                    .get(base as usize + o as usize)
                    .copied()
                    .unwrap_or_else(Iv::top),
                _ => Iv::top(),
            };
            st.push(v);
            Step::Continue(next)
        }
        Insn::StoreLocalIdx(base) => {
            let v = st.pop();
            let off = st.pop();
            let f = st.frame();
            match off.as_exact() {
                Some(o) if o >= 0 => {
                    if let Some(slot) = f.locals.get_mut(base as usize + o as usize) {
                        *slot = v;
                    }
                }
                // Unknown slot: havoc everything it could alias.
                _ => {
                    for l in f.locals.iter_mut().skip(base as usize) {
                        *l = Iv::top();
                    }
                }
            }
            Step::Continue(next)
        }
        Insn::Dup => {
            let v = st.frame().stack.last().copied().unwrap_or_else(Iv::top);
            st.push(v);
            Step::Continue(next)
        }
        Insn::Drop => {
            st.pop();
            Step::Continue(next)
        }
        Insn::Swap => {
            let a = st.pop();
            let b = st.pop();
            st.push(a);
            st.push(b);
            Step::Continue(next)
        }
        Insn::Add
        | Insn::Sub
        | Insn::Mul
        | Insn::Div
        | Insn::Rem
        | Insn::BitAnd
        | Insn::BitOr
        | Insn::BitXor
        | Insn::Shl
        | Insn::Shr
        | Insn::Sar
        | Insn::Eq
        | Insn::Ne
        | Insn::LtS
        | Insn::LeS
        | Insn::GtS
        | Insn::GeS
        | Insn::LtU
        | Insn::GeU => {
            let b = st.pop();
            let a = st.pop();
            let r = binop(insn, a, b);
            st.push(r);
            Step::Continue(next)
        }
        Insn::Neg => {
            let v = st.pop();
            st.push(Iv::sub(Iv::exact(0), v));
            Step::Continue(next)
        }
        Insn::Not => {
            let v = st.pop();
            st.push(match v.truth() {
                Tri::True => Iv::exact(0),
                Tri::False => Iv::exact(1),
                Tri::Maybe => Iv::boolean(),
            });
            Step::Continue(next)
        }
        Insn::BitNot => {
            st.pop();
            st.push(Iv::top());
            Step::Continue(next)
        }
        Insn::Jump(t) => Step::Continue(t),
        Insn::JumpIfZero(t) => {
            let v = st.pop();
            match v.truth() {
                Tri::False => Step::Continue(t),
                Tri::True => Step::Continue(next),
                Tri::Maybe => Step::Fork(next, t),
            }
        }
        Insn::JumpIfNot(t) => {
            let v = st.pop();
            match v.truth() {
                Tri::True => Step::Continue(t),
                Tri::False => Step::Continue(next),
                Tri::Maybe => Step::Fork(next, t),
            }
        }
        Insn::Call { addr, argc } => {
            if st.frames.len() >= FRAME_BUDGET {
                return Step::Stuck;
            }
            let f = st.frame();
            let n = f.stack.len();
            let args = f.stack.split_off(n.saturating_sub(argc as usize));
            st.frames.push(AbsFrame {
                locals: args,
                stack: Vec::new(),
                ret_pc: next,
            });
            Step::Continue(addr)
        }
        Insn::Ret { retc } => {
            let Some(popped) = st.frames.pop() else {
                return Step::Stuck;
            };
            let n = popped.stack.len();
            let results = popped.stack[n.saturating_sub(retc as usize)..].to_vec();
            match st.frames.last_mut() {
                Some(caller) => {
                    caller.stack.extend(results);
                    Step::Continue(popped.ret_pc)
                }
                None => Step::Finished,
            }
        }
        Insn::LoadMem => {
            st.pop();
            st.push(Iv::top());
            Step::Continue(next)
        }
        Insn::StoreMem => {
            st.pop();
            st.pop();
            Step::Continue(next)
        }
        Insn::Trap { argc, retc, .. } => {
            let f = st.frame();
            let n = f.stack.len();
            f.stack.truncate(n.saturating_sub(argc as usize));
            for _ in 0..retc {
                f.stack.push(Iv::top());
            }
            Step::Continue(next)
        }
        Insn::Halt => Step::Finished,
        Insn::Nop => Step::Continue(next),
    }
}

fn binop(insn: &Insn, a: Iv, b: Iv) -> Iv {
    match insn {
        Insn::Add => Iv::add(a, b),
        Insn::Sub => Iv::sub(a, b),
        Insn::Mul => Iv::mul(a, b),
        Insn::Div => Iv::div(a, b),
        Insn::Rem => Iv::rem(a, b),
        Insn::BitAnd => Iv::bit_op(a, b, |x, y| x & y),
        Insn::BitOr => Iv::bit_op(a, b, |x, y| x | y),
        Insn::BitXor => Iv::bit_op(a, b, |x, y| x ^ y),
        Insn::Shl => Iv::shl(a, b),
        Insn::Shr | Insn::Sar => Iv::shr(a, b),
        Insn::Eq => Iv::eq(a, b),
        Insn::Ne => match Iv::eq(a, b).truth() {
            Tri::True => Iv::exact(0),
            Tri::False => Iv::exact(1),
            Tri::Maybe => Iv::boolean(),
        },
        Insn::LtS | Insn::LtU => Iv::lt(a, b),
        Insn::LeS => Iv::le(a, b),
        Insn::GtS => Iv::lt(b, a),
        Insn::GeS | Insn::GeU => Iv::le(b, a),
        _ => Iv::top(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(insns: Vec<Insn>) -> Program {
        Program {
            insns,
            funcs: Vec::new(),
        }
    }

    #[test]
    fn straight_line_cost_is_exact() {
        let p = program(vec![
            Insn::Enter(1),
            Insn::Const(3),
            Insn::Const(4),
            Insn::Add,
            Insn::StoreLocal(0),
            Insn::Ret { retc: 0 },
        ]);
        let b = analyze_entry(&p, &MemoryMap::default(), 0);
        assert_eq!(b.bcet, 6);
        assert_eq!(b.wcet, Some(6));
    }

    #[test]
    fn memory_access_is_priced_by_region() {
        let p = program(vec![
            Insn::Const(0x3000_0000), // L3
            Insn::LoadMem,
            Insn::Drop,
            Insn::Ret { retc: 0 },
        ]);
        let b = analyze_entry(&p, &MemoryMap::default(), 0);
        // Const + L3 latency (32) + Drop + Ret.
        assert_eq!(b.bcet, 35);
        assert_eq!(b.wcet, Some(35));
    }

    #[test]
    fn constant_loop_unrolls_without_widening() {
        // i = 0; while (i < 3) { i = i + 1 }
        let p = program(vec![
            Insn::Enter(1),        // 0
            Insn::Const(0),        // 1
            Insn::StoreLocal(0),   // 2
            Insn::LoadLocal(0),    // 3: loop top
            Insn::Const(3),        // 4
            Insn::LtU,             // 5
            Insn::JumpIfZero(12),  // 6
            Insn::LoadLocal(0),    // 7
            Insn::Const(1),        // 8
            Insn::Add,             // 9
            Insn::StoreLocal(0),   // 10
            Insn::Jump(3),         // 11
            Insn::Ret { retc: 0 }, // 12
        ]);
        let b = analyze_entry(&p, &MemoryMap::default(), 0);
        assert_eq!(b.wcet, Some(b.bcet), "decided loop must not fork");
        // 3 header insns + 4 * (4-insn check) + 3 * (5-insn body) + Ret.
        assert_eq!(b.bcet, 3 + 4 * 4 + 3 * 5 + 1);
    }

    #[test]
    fn unknown_branch_widens_the_interval_not_the_bound() {
        let p = program(vec![
            Insn::Const(0x2000_0000), // 0: L2 address
            Insn::LoadMem,            // 1: unknown value
            Insn::JumpIfZero(6),      // 2
            Insn::Const(1),           // 3
            Insn::Const(2),           // 4
            Insn::Add,                // 5
            Insn::Ret { retc: 0 },    // 6
        ]);
        let b = analyze_entry(&p, &MemoryMap::default(), 0);
        // Taken: 1 + 8 + 1 + 1 = 11; fallthrough adds 3 more.
        assert_eq!(b.bcet, 11);
        assert_eq!(b.wcet, Some(14));
    }

    #[test]
    fn unbounded_loop_widens_to_none() {
        // while (mem[L2] != 0) {}
        let p = program(vec![
            Insn::Const(0x2000_0000), // 0
            Insn::LoadMem,            // 1
            Insn::JumpIfNot(0),       // 2
            Insn::Ret { retc: 0 },    // 3
        ]);
        let b = analyze_entry(&p, &MemoryMap::default(), 0);
        assert_eq!(b.wcet, None, "input-dependent loop must widen");
        assert!(b.bcet >= 11, "best case is the straight exit");
    }

    #[test]
    fn calls_are_inlined_and_recursion_is_stuck() {
        // Callee at 4: Enter, Ret. Caller: Call, Ret.
        let p = program(vec![
            Insn::Call { addr: 3, argc: 0 }, // 0
            Insn::Ret { retc: 0 },           // 1
            Insn::Nop,                       // 2
            Insn::Enter(0),                  // 3
            Insn::Ret { retc: 0 },           // 4
        ]);
        let b = analyze_entry(&p, &MemoryMap::default(), 0);
        assert_eq!(b.wcet, Some(4), "call + enter + ret + ret");

        let rec = program(vec![Insn::Call { addr: 0, argc: 0 }]);
        let b = analyze_entry(&rec, &MemoryMap::default(), 0);
        assert_eq!(b.wcet, None, "unbounded recursion widens");
    }
}
