//! Minimal deadlock-free FIFO capacities by abstract simulation.
//!
//! The PEDF runtime is a Kahn process network: every filter is a
//! deterministic process doing blocking reads (window fills) and blocking
//! writes (token pushes), so whether a given capacity assignment deadlocks
//! is independent of scheduling order — one abstract execution decides it.
//! The firing discipline is fixed by the module controllers (each filter
//! fires exactly once per module step, with a `wait_sync` barrier), which
//! this simulation reproduces: filters run concurrently inside a round,
//! and a filter starts round `k+1` only when every simulated sibling of
//! its module finished round `k`.
//!
//! Capacities are found Parks-style: start every analyzed FIFO at 1,
//! simulate, and on deadlock grow one FIFO some writer is space-blocked
//! on; once the network completes, shrink each FIFO back down while
//! completion survives. The result satisfies exactly the property the
//! dynamic gate (`analyze --sched-check`) replays on the real simulator:
//! the network completes at the reported capacities and deadlocks when
//! any single analyzed FIFO loses one slot.

use std::collections::BTreeMap;

use pedf::graph::{ActorKind, AppGraph};

use crate::trace::{IoOp, KernelTrace};

/// Rounds of the periodic schedule the abstract simulation runs. With
/// balanced per-round rates the FIFO state is periodic, so a handful of
/// rounds separates "completes" from "deadlocks"; the differential gate
/// cross-checks this against thousands of real cycles.
pub const SIM_ROUNDS: u32 = 8;

/// Growth safety valve: no single FIFO is grown past this many slots
/// (a balanced graph never gets anywhere close).
const MAX_CAP: u32 = 1024;

/// Why a capacity assignment failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimOutcome {
    /// Every simulated filter finished all rounds.
    Completes,
    /// No filter could make progress. Link ids some writer was
    /// space-blocked on / some reader was token-blocked on.
    Deadlock {
        blocked_pushes: Vec<u32>,
        blocked_pops: Vec<u32>,
    },
}

/// The links the capacity analysis covers, and the simulation model
/// built over them.
pub struct Model {
    /// Per-filter per-round op lists, resolved to link ids. `None` ops
    /// target excluded links and always succeed.
    procs: Vec<Proc>,
    /// Analyzed link ids (sorted).
    pub links: Vec<u32>,
}

struct Proc {
    pub module: u32,
    ops: Vec<Option<(u32, bool)>>, // (link id, is_push)
}

/// Build the simulation model. A data link between two filters is
/// *analyzed* when both endpoint traces are exact and its per-round
/// rates balance (`pushes == pops > 0`); everything else — boundary and
/// control links, inexact kernels, rate-imbalanced links (dfa's DFA003
/// territory) — is excluded and treated as never blocking.
pub fn build_model(g: &AppGraph, traces: &BTreeMap<u32, KernelTrace>) -> Model {
    let mut analyzed: Vec<u32> = Vec::new();
    for l in g.data_links() {
        let (from_a, to_a) = g.link_ends(l.id);
        let (fa, ta) = (g.actor(from_a), g.actor(to_a));
        if fa.kind != ActorKind::Filter || ta.kind != ActorKind::Filter {
            continue;
        }
        let (Some(ft), Some(tt)) = (traces.get(&from_a.0), traces.get(&to_a.0)) else {
            continue;
        };
        if !ft.exact || !tt.exact {
            continue;
        }
        let prod = &g.conn(l.from).name;
        let cons = &g.conn(l.to).name;
        let pushes = ft.pushes(prod);
        let pops = tt.pops(cons);
        if pushes > 0 && pushes == pops {
            analyzed.push(l.id.0);
        }
    }
    analyzed.sort_unstable();

    let mut procs = Vec::new();
    for a in g.filters() {
        let Some(t) = traces.get(&a.id.0) else {
            continue;
        };
        if !t.exact {
            continue;
        }
        let ops = t
            .ops
            .iter()
            .map(|(op, _)| {
                let conn = g.conn_by_name(a.id, op.conn())?;
                let link = conn.link?;
                if !analyzed.contains(&link.0) {
                    return None;
                }
                Some((link.0, matches!(op, IoOp::Push { .. })))
            })
            .collect();
        procs.push(Proc {
            module: a.parent.map_or(u32::MAX, |p| p.0),
            ops,
        });
    }
    Model {
        procs,
        links: analyzed,
    }
}

/// Run the abstract network at the given capacities for [`SIM_ROUNDS`].
pub fn simulate(model: &Model, caps: &BTreeMap<u32, u32>) -> SimOutcome {
    let mut occ: BTreeMap<u32, u32> = model.links.iter().map(|&l| (l, 0)).collect();
    let mut pos = vec![0usize; model.procs.len()];
    let mut round = vec![0u32; model.procs.len()];
    loop {
        let mut progress = false;
        let mut all_done = true;
        for i in 0..model.procs.len() {
            if round[i] >= SIM_ROUNDS {
                continue;
            }
            all_done = false;
            // Barrier: start a round only when every simulated sibling
            // of the same module reached it.
            let module = model.procs[i].module;
            let gate = |round: &[u32]| {
                model
                    .procs
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.module == module)
                    .all(|(j, _)| round[j] >= round[i])
            };
            if pos[i] == 0 && !gate(&round) {
                continue;
            }
            // Greedy: run this filter until it blocks or ends the round.
            while pos[i] < model.procs[i].ops.len() {
                match model.procs[i].ops[pos[i]] {
                    None => {}
                    Some((link, true)) => {
                        let cap = caps.get(&link).copied().unwrap_or(1);
                        if occ[&link] >= cap {
                            break;
                        }
                        *occ.get_mut(&link).unwrap() += 1;
                    }
                    Some((link, false)) => {
                        if occ[&link] == 0 {
                            break;
                        }
                        *occ.get_mut(&link).unwrap() -= 1;
                    }
                }
                pos[i] += 1;
                progress = true;
            }
            if pos[i] == model.procs[i].ops.len() {
                pos[i] = 0;
                round[i] += 1;
                progress = true;
            }
        }
        if all_done {
            return SimOutcome::Completes;
        }
        if !progress {
            let mut blocked_pushes = Vec::new();
            let mut blocked_pops = Vec::new();
            for (i, p) in model.procs.iter().enumerate() {
                if round[i] >= SIM_ROUNDS || pos[i] >= p.ops.len() {
                    continue;
                }
                if let Some((link, push)) = p.ops[pos[i]] {
                    if push {
                        blocked_pushes.push(link);
                    } else {
                        blocked_pops.push(link);
                    }
                }
            }
            blocked_pushes.sort_unstable();
            blocked_pushes.dedup();
            blocked_pops.sort_unstable();
            blocked_pops.dedup();
            return SimOutcome::Deadlock {
                blocked_pushes,
                blocked_pops,
            };
        }
    }
}

/// Minimal deadlock-free capacity per analyzed link, or `None` when the
/// deadlock is structural (no space-blocked writer to relieve — growing
/// buffers cannot fix a starvation cycle; dfa's DFA004 names it).
pub fn minimal_caps(model: &Model) -> Option<BTreeMap<u32, u32>> {
    let mut caps: BTreeMap<u32, u32> = model.links.iter().map(|&l| (l, 1)).collect();
    loop {
        match simulate(model, &caps) {
            SimOutcome::Completes => break,
            SimOutcome::Deadlock { blocked_pushes, .. } => {
                let &grow = blocked_pushes.first()?;
                let slot = caps.get_mut(&grow).expect("blocked link is analyzed");
                *slot += 1;
                if *slot > MAX_CAP {
                    return None;
                }
            }
        }
    }
    // Shrink each link back down while the network still completes.
    for &l in &model.links {
        while caps[&l] > 1 {
            *caps.get_mut(&l).unwrap() -= 1;
            if simulate(model, &caps) != SimOutcome::Completes {
                *caps.get_mut(&l).unwrap() += 1;
                break;
            }
        }
    }
    Some(caps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::trace_work;
    use pedf::graph::{ActorKind, Dir, LinkClass};
    use pedf::AppGraph;

    /// Two filters `p` (id 2) and `c` (id 3) in one module, wired by the
    /// given `(producer conn, consumer conn)` pairs, one link each.
    fn two_filter_graph(links: &[(&str, &str)]) -> AppGraph {
        let mut g = AppGraph::new();
        let root = g
            .register_actor(0, "root", ActorKind::Module, None, None, None)
            .unwrap();
        let m = g
            .register_actor(1, "m", ActorKind::Module, Some(root), None, None)
            .unwrap();
        let p = g
            .register_actor(2, "p", ActorKind::Filter, Some(m), None, None)
            .unwrap();
        let c = g
            .register_actor(3, "c", ActorKind::Filter, Some(m), None, None)
            .unwrap();
        for (i, (prod, cons)) in links.iter().enumerate() {
            let i = i as u32;
            let out = g
                .register_conn(2 * i, p, prod, Dir::Out, debuginfo::TypeId(0))
                .unwrap();
            let inp = g
                .register_conn(2 * i + 1, c, cons, Dir::In, debuginfo::TypeId(0))
                .unwrap();
            g.register_link(i, out, inp, 4, LinkClass::Data, 0).unwrap();
        }
        g
    }

    fn traces(p_src: &str, c_src: &str) -> BTreeMap<u32, KernelTrace> {
        let parse = |s: &str| kernelc::parser::parse(s, &|_| false).unwrap();
        let mut t = BTreeMap::new();
        t.insert(2, trace_work(&parse(p_src)));
        t.insert(3, trace_work(&parse(c_src)));
        t
    }

    #[test]
    fn pipeline_burst_completes_at_capacity_one() {
        // Window pops free FIFO slots as soon as each read executes, so
        // a straight pipeline burst never needs more than one slot.
        let t = traces(
            "void work() { pedf.io.out[0] = 1; pedf.io.out[1] = 2; }",
            "void work() { U32 a = pedf.io.in[1]; }",
        );
        let g = two_filter_graph(&[("out", "in")]);
        let model = build_model(&g, &t);
        assert_eq!(model.links, vec![0]);
        let caps = minimal_caps(&model).expect("not structural");
        assert_eq!(caps[&0], 1);
    }

    #[test]
    fn gated_burst_needs_capacity_two() {
        // The consumer pops the gate token first, which the producer only
        // pushes after both burst tokens: at capacity 1 the second burst
        // push and the gate pop wait on each other forever.
        let t = traces(
            "void work() {
    pedf.io.a_out[0] = 1;
    pedf.io.a_out[1] = 2;
    pedf.io.g_out[0] = 3;
}",
            "void work() {
    U32 g = pedf.io.g_in[0];
    U32 a = pedf.io.a_in[1];
}",
        );
        let g = two_filter_graph(&[("a_out", "a_in"), ("g_out", "g_in")]);
        let model = build_model(&g, &t);
        assert_eq!(model.links, vec![0, 1]);
        let one: BTreeMap<u32, u32> = [(0, 1), (1, 1)].into();
        match simulate(&model, &one) {
            SimOutcome::Deadlock { blocked_pushes, .. } => {
                assert_eq!(blocked_pushes, vec![0], "writer stuck on the burst link")
            }
            SimOutcome::Completes => panic!("capacity 1 must deadlock"),
        }
        let caps = minimal_caps(&model).expect("not structural");
        assert_eq!(caps[&0], 2, "burst link needs two slots");
        assert_eq!(caps[&1], 1, "gate link stays at one");
    }

    #[test]
    fn rate_imbalanced_links_are_excluded() {
        let t = traces(
            "void work() { pedf.io.out[0] = 1; pedf.io.out[1] = 2; }",
            "void work() { U32 a = pedf.io.in[0]; }",
        );
        let g = two_filter_graph(&[("out", "in")]);
        let model = build_model(&g, &t);
        assert!(model.links.is_empty(), "2 pushes vs 1 pop: not analyzed");
    }

    #[test]
    fn inexact_traces_are_excluded() {
        let t = traces(
            "void work() { U32 n = pedf.data.k; if (n > 2) { pedf.io.out[0] = 1; } }",
            "void work() { U32 a = pedf.io.in[0]; }",
        );
        let g = two_filter_graph(&[("out", "in")]);
        let model = build_model(&g, &t);
        assert!(model.links.is_empty());
    }
}
