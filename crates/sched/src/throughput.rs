//! Repetition vector, throughput bound and critical-cycle bottleneck.
//!
//! From the `dfa` per-port token rates (exact ones only) the classic SDF
//! repetition vector is solved by rational propagation; combined with the
//! per-kernel cycle bounds of [`crate::wcet`] it yields a *sound upper
//! bound on steady-state throughput*: each filter is pinned to one PE, so
//! its `rep(a)` firings per graph iteration serialize, and no schedule
//! can finish an iteration faster than the busiest actor's
//! `rep(a) × BCET(a)` cycles. (Cycle-ratio terms over feedback cycles can
//! only lengthen the period further; the max-cycle-ratio machinery here
//! is used to *attribute* the bound to a cycle for diagnostics, not to
//! tighten the enforced bound.)

use std::collections::{BTreeMap, BTreeSet};

use pedf::graph::AppGraph;

use crate::wcet::CycleBounds;

/// A non-negative rational, kept reduced (same idiom as `dfa::graph`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frac {
    num: u64,
    den: u64,
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a.max(1)
    } else {
        gcd(b, a % b)
    }
}

impl Frac {
    fn new(num: u64, den: u64) -> Frac {
        let g = gcd(num, den.max(1));
        Frac {
            num: num / g,
            den: den.max(1) / g,
        }
    }

    fn mul(self, num: u64, den: u64) -> Frac {
        Frac::new(self.num * num, self.den * den)
    }
}

/// Solve the repetition vector over data links between filters whose
/// both rates are exact and positive. Returns `None` when the balance
/// equations conflict (dfa's DFA003 already reports that) or when the
/// integer scaling would explode.
pub fn repetition_vector(
    g: &AppGraph,
    rates: &BTreeMap<u32, BTreeMap<String, (u32, u32)>>,
) -> Option<BTreeMap<u32, u32>> {
    // rates: actor -> conn -> (pushes, pops) per firing; exact entries only.
    let mut rep: BTreeMap<u32, Frac> = BTreeMap::new();
    let filters: Vec<u32> = g.filters().map(|a| a.id.0).collect();
    for &f in &filters {
        if rep.contains_key(&f) {
            continue;
        }
        rep.insert(f, Frac::new(1, 1));
        let mut queue = vec![f];
        while let Some(a) = queue.pop() {
            let ra = rep[&a];
            for l in g.data_links() {
                let (from, to) = g.link_ends(l.id);
                let (other, prod_side) = if from.0 == a && to.0 != a {
                    (to.0, true)
                } else if to.0 == a && from.0 != a {
                    (from.0, false)
                } else {
                    continue;
                };
                if !filters.contains(&other) {
                    continue;
                }
                let prod_conn = &g.conn(l.from).name;
                let cons_conn = &g.conn(l.to).name;
                let prod_rate = rates
                    .get(&if prod_side { a } else { other })?
                    .get(prod_conn)
                    .map(|r| r.0);
                let cons_rate = rates
                    .get(&if prod_side { other } else { a })?
                    .get(cons_conn)
                    .map(|r| r.1);
                let (Some(p), Some(c)) = (prod_rate, cons_rate) else {
                    continue;
                };
                if p == 0 || c == 0 {
                    continue;
                }
                // rep(prod) * p == rep(cons) * c.
                let want = if prod_side {
                    ra.mul(u64::from(p), u64::from(c))
                } else {
                    ra.mul(u64::from(c), u64::from(p))
                };
                match rep.get(&other) {
                    Some(have) if *have != want => return None,
                    Some(_) => {}
                    None => {
                        rep.insert(other, want);
                        queue.push(other);
                    }
                }
            }
        }
    }
    // Scale each value to an integer via the lcm of denominators.
    let mut lcm: u64 = 1;
    for f in rep.values() {
        lcm = lcm / gcd(lcm, f.den) * f.den;
        if lcm > 1 << 20 {
            return None;
        }
    }
    let ints: BTreeMap<u32, u64> = rep
        .iter()
        .map(|(&a, f)| (a, f.num * (lcm / f.den)))
        .collect();
    let g0 = ints.values().fold(0, |acc, &v| gcd(acc, v)).max(1);
    let scaled: BTreeMap<u32, u32> = ints
        .iter()
        .map(|(&a, &v)| (a, u32::try_from(v / g0).unwrap_or(u32::MAX)))
        .collect();
    if scaled.values().any(|&v| v == 0 || v > 1 << 16) {
        return None;
    }
    Some(scaled)
}

/// The throughput verdict.
#[derive(Debug, Clone, Default)]
pub struct Throughput {
    /// Sound lower bound on the steady-state period: cycles per graph
    /// iteration. Zero when no filter had usable bounds.
    pub period_lb: u64,
    /// The filter attaining the bound.
    pub bottleneck: Option<u32>,
    /// Actors / links of the dependency cycle through the bottleneck
    /// (for `graph dot` bold paint); just the bottleneck when it sits on
    /// no cycle.
    pub cycle_actors: BTreeSet<u32>,
    pub cycle_links: BTreeSet<u32>,
}

/// Compute the bound from repetition counts and per-kernel cycle bounds.
pub fn analyze(
    g: &AppGraph,
    reps: &BTreeMap<u32, u32>,
    bounds: &BTreeMap<u32, CycleBounds>,
) -> Throughput {
    let mut out = Throughput::default();
    for a in g.filters() {
        let rep = u64::from(reps.get(&a.id.0).copied().unwrap_or(1));
        let Some(b) = bounds.get(&a.id.0) else {
            continue;
        };
        let load = rep * b.bcet;
        if load > out.period_lb {
            out.period_lb = load;
            out.bottleneck = Some(a.id.0);
        }
    }
    if let Some(b) = out.bottleneck {
        let (actors, links) = cycle_through(g, b);
        out.cycle_actors = actors;
        out.cycle_links = links;
    }
    out
}

/// The strongly connected component of `start` in the filter/data-link
/// graph, with its internal links — the feedback structure the bound
/// propagates around. Falls back to the lone actor when none.
fn cycle_through(g: &AppGraph, start: u32) -> (BTreeSet<u32>, BTreeSet<u32>) {
    let filters: BTreeSet<u32> = g.filters().map(|a| a.id.0).collect();
    let edges: Vec<(u32, u32, u32)> = g
        .data_links()
        .filter_map(|l| {
            let (f, t) = g.link_ends(l.id);
            (filters.contains(&f.0) && filters.contains(&t.0)).then_some((f.0, t.0, l.id.0))
        })
        .collect();
    let reach = |from: u32, to: u32| -> bool {
        let mut seen = BTreeSet::new();
        let mut queue = vec![from];
        while let Some(a) = queue.pop() {
            for &(s, d, _) in &edges {
                if s == a && seen.insert(d) {
                    if d == to {
                        return true;
                    }
                    queue.push(d);
                }
            }
        }
        false
    };
    let scc: BTreeSet<u32> = filters
        .iter()
        .copied()
        .filter(|&a| a == start || (reach(start, a) && reach(a, start)))
        .collect();
    if scc.len() <= 1 && !reach(start, start) {
        return ([start].into(), BTreeSet::new());
    }
    let links: BTreeSet<u32> = edges
        .iter()
        .filter(|(s, d, _)| scc.contains(s) && scc.contains(d))
        .map(|&(_, _, l)| l)
        .collect();
    (scc, links)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pedf::graph::{ActorKind, Dir, LinkClass};

    fn rates_of(entries: &[(u32, &str, u32, u32)]) -> BTreeMap<u32, BTreeMap<String, (u32, u32)>> {
        let mut m: BTreeMap<u32, BTreeMap<String, (u32, u32)>> = BTreeMap::new();
        for &(actor, conn, pushes, pops) in entries {
            m.entry(actor)
                .or_default()
                .insert(conn.to_string(), (pushes, pops));
        }
        m
    }

    fn pipeline() -> AppGraph {
        let mut g = AppGraph::new();
        let root = g
            .register_actor(0, "root", ActorKind::Module, None, None, None)
            .unwrap();
        let m = g
            .register_actor(1, "m", ActorKind::Module, Some(root), None, None)
            .unwrap();
        let a = g
            .register_actor(2, "a", ActorKind::Filter, Some(m), None, None)
            .unwrap();
        let b = g
            .register_actor(3, "b", ActorKind::Filter, Some(m), None, None)
            .unwrap();
        let out = g
            .register_conn(0, a, "out", Dir::Out, debuginfo::TypeId(0))
            .unwrap();
        let inp = g
            .register_conn(1, b, "in", Dir::In, debuginfo::TypeId(0))
            .unwrap();
        g.register_link(0, out, inp, 4, LinkClass::Data, 0).unwrap();
        g
    }

    #[test]
    fn one_to_two_rates_give_one_two_repetitions() {
        let g = pipeline();
        // a pushes 2 per firing, b pops 1: b fires twice per a firing.
        let rates = rates_of(&[(2, "out", 2, 0), (3, "in", 0, 1)]);
        let reps = repetition_vector(&g, &rates).expect("consistent");
        assert_eq!(reps[&2], 1);
        assert_eq!(reps[&3], 2);
    }

    #[test]
    fn bottleneck_is_the_heaviest_rep_weighted_actor() {
        let g = pipeline();
        let rates = rates_of(&[(2, "out", 1, 0), (3, "in", 0, 1)]);
        let reps = repetition_vector(&g, &rates).unwrap();
        let mut bounds = BTreeMap::new();
        bounds.insert(
            2,
            CycleBounds {
                bcet: 10,
                wcet: Some(12),
            },
        );
        bounds.insert(
            3,
            CycleBounds {
                bcet: 40,
                wcet: Some(90),
            },
        );
        let t = analyze(&g, &reps, &bounds);
        assert_eq!(t.period_lb, 40);
        assert_eq!(t.bottleneck, Some(3));
        // An acyclic pipeline: the "cycle" degenerates to the actor.
        assert_eq!(t.cycle_actors, [3].into());
        assert!(t.cycle_links.is_empty());
    }
}
