//! The P2012 memory hierarchy (Fig. 1 of the paper).
//!
//! Three levels, word-addressed:
//!
//! * **L1** — one bank per cluster, shared by the cluster's PEs (lowest
//!   latency; holds intra-cluster data links);
//! * **L2** — chip-wide, used for inter-cluster communication;
//! * **L3** — external memory reached through DMA, used for host↔fabric
//!   exchanges.
//!
//! The debugger's *watchpoints* hook the store/load paths here: every access
//! consults a (normally empty) watch list, and hits accumulate in a buffer
//! that the debugger drains after each simulated cycle. When no watchpoints
//! are set the check is a single branch on an empty `Vec`, keeping the
//! undebuggged fast path honest for the overhead benchmarks (experiment E1).

use debuginfo::Word;

/// A level of the hierarchy plus its instance (cluster) when relevant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    L1 { cluster: u16 },
    L2,
    L3,
}

impl Region {
    pub fn name(self) -> String {
        match self {
            Region::L1 { cluster } => format!("L1[{cluster}]"),
            Region::L2 => "L2".to_string(),
            Region::L3 => "L3".to_string(),
        }
    }
}

/// Fixed address-space layout (word addresses).
///
/// * L1 of cluster `c`: `0x1000_0000 + c * 0x0001_0000`
/// * L2: `0x2000_0000`
/// * L3: `0x3000_0000`
#[derive(Debug, Clone)]
pub struct MemoryMap {
    pub clusters: u16,
    pub l1_words: u32,
    pub l2_words: u32,
    pub l3_words: u32,
    pub l1_latency: u32,
    pub l2_latency: u32,
    pub l3_latency: u32,
}

pub const L1_BASE: u32 = 0x1000_0000;
pub const L1_STRIDE: u32 = 0x0001_0000;
pub const L2_BASE: u32 = 0x2000_0000;
pub const L3_BASE: u32 = 0x3000_0000;

impl Default for MemoryMap {
    fn default() -> Self {
        MemoryMap {
            clusters: 2,
            l1_words: 16 * 1024,
            l2_words: 256 * 1024,
            l3_words: 1024 * 1024,
            l1_latency: 1,
            l2_latency: 8,
            l3_latency: 32,
        }
    }
}

impl MemoryMap {
    pub fn l1_base(&self, cluster: u16) -> u32 {
        L1_BASE + u32::from(cluster) * L1_STRIDE
    }

    /// Decode an address into (region, offset).
    pub fn decode(&self, addr: u32) -> Result<(Region, u32), MemError> {
        if (L1_BASE..L1_BASE + u32::from(self.clusters) * L1_STRIDE).contains(&addr) {
            let cluster = ((addr - L1_BASE) / L1_STRIDE) as u16;
            let off = (addr - L1_BASE) % L1_STRIDE;
            if off < self.l1_words {
                return Ok((Region::L1 { cluster }, off));
            }
        } else if (L2_BASE..L2_BASE + self.l2_words).contains(&addr) {
            return Ok((Region::L2, addr - L2_BASE));
        } else if (L3_BASE..L3_BASE + self.l3_words).contains(&addr) {
            return Ok((Region::L3, addr - L3_BASE));
        }
        Err(MemError::Unmapped { addr })
    }

    pub fn latency(&self, region: Region) -> u32 {
        match region {
            Region::L1 { .. } => self.l1_latency,
            Region::L2 => self.l2_latency,
            Region::L3 => self.l3_latency,
        }
    }
}

/// Memory access failure, surfaced to the debugger as a PE fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    Unmapped { addr: u32 },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::Unmapped { addr } => {
                write!(f, "unmapped address 0x{addr:08x}")
            }
        }
    }
}

/// Watchpoint trigger kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchKind {
    Write,
    Read,
    Access,
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    id: u32,
    lo: u32,
    hi: u32, // inclusive
    kind: WatchKind,
}

/// One recorded watchpoint hit: which watch, where, the value involved and
/// (for writes) the value it replaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchHit {
    pub id: u32,
    pub addr: u32,
    pub was_write: bool,
    pub old: Word,
    pub new: Word,
}

/// The simulated memory system.
#[derive(Debug)]
pub struct Memory {
    map: MemoryMap,
    l1: Vec<Vec<Word>>,
    l2: Vec<Word>,
    l3: Vec<Word>,
    watches: Vec<Watch>,
    hits: Vec<WatchHit>,
    /// Total accesses, for the simulator-throughput benchmark (B4).
    pub reads: u64,
    pub writes: u64,
}

impl Memory {
    pub fn new(map: MemoryMap) -> Self {
        let l1 = (0..map.clusters)
            .map(|_| vec![0; map.l1_words as usize])
            .collect();
        Memory {
            l2: vec![0; map.l2_words as usize],
            l3: vec![0; map.l3_words as usize],
            l1,
            map,
            watches: Vec::new(),
            hits: Vec::new(),
            reads: 0,
            writes: 0,
        }
    }

    pub fn map(&self) -> &MemoryMap {
        &self.map
    }

    fn slot(&mut self, addr: u32) -> Result<(&mut Word, u32), MemError> {
        let (region, off) = self.map.decode(addr)?;
        let lat = self.map.latency(region);
        let cell = match region {
            Region::L1 { cluster } => &mut self.l1[cluster as usize][off as usize],
            Region::L2 => &mut self.l2[off as usize],
            Region::L3 => &mut self.l3[off as usize],
        };
        Ok((cell, lat))
    }

    /// Load a word; returns `(value, stall_cycles)`.
    pub fn read(&mut self, addr: u32) -> Result<(Word, u32), MemError> {
        self.reads += 1;
        let watched = self.match_watch(addr, false);
        let (cell, lat) = self.slot(addr)?;
        let v = *cell;
        if let Some(id) = watched {
            self.hits.push(WatchHit {
                id,
                addr,
                was_write: false,
                old: v,
                new: v,
            });
        }
        Ok((v, lat))
    }

    /// Store a word; returns the stall cycles.
    pub fn write(&mut self, addr: u32, value: Word) -> Result<u32, MemError> {
        self.writes += 1;
        let watched = self.match_watch(addr, true);
        let (cell, lat) = self.slot(addr)?;
        let old = *cell;
        *cell = value;
        if let Some(id) = watched {
            self.hits.push(WatchHit {
                id,
                addr,
                was_write: true,
                old,
                new: value,
            });
        }
        Ok(lat)
    }

    /// Read without latency accounting or watch triggering: the debugger's
    /// own inspection path (`print`, link occupancy displays) must not
    /// perturb the simulation — the paper stresses that debugger slowdown
    /// "does not alter the execution semantic".
    pub fn peek(&self, addr: u32) -> Result<Word, MemError> {
        let (region, off) = self.map.decode(addr)?;
        Ok(match region {
            Region::L1 { cluster } => self.l1[cluster as usize][off as usize],
            Region::L2 => self.l2[off as usize],
            Region::L3 => self.l3[off as usize],
        })
    }

    /// Write without latency/watch side effects: used by loaders and by the
    /// debugger's token-alteration commands (§III "Altering the Normal
    /// Execution").
    pub fn poke(&mut self, addr: u32, value: Word) -> Result<(), MemError> {
        let (cell, _) = self.slot(addr)?;
        *cell = value;
        Ok(())
    }

    fn match_watch(&self, addr: u32, is_write: bool) -> Option<u32> {
        if self.watches.is_empty() {
            return None;
        }
        self.watches
            .iter()
            .find(|w| {
                addr >= w.lo
                    && addr <= w.hi
                    && match w.kind {
                        WatchKind::Write => is_write,
                        WatchKind::Read => !is_write,
                        WatchKind::Access => true,
                    }
            })
            .map(|w| w.id)
    }

    /// Install a watch over `[lo, hi]` (inclusive, word addresses).
    pub fn add_watch(&mut self, id: u32, lo: u32, hi: u32, kind: WatchKind) {
        self.watches.push(Watch { id, lo, hi, kind });
    }

    pub fn remove_watch(&mut self, id: u32) {
        self.watches.retain(|w| w.id != id);
    }

    /// Drain the accumulated watch hits (debugger, once per cycle).
    pub fn take_hits(&mut self) -> Vec<WatchHit> {
        std::mem::take(&mut self.hits)
    }

    pub fn has_hits(&self) -> bool {
        !self.hits.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        Memory::new(MemoryMap::default())
    }

    #[test]
    fn decode_all_regions() {
        let m = MemoryMap::default();
        assert_eq!(m.decode(L1_BASE).unwrap().0, Region::L1 { cluster: 0 });
        assert_eq!(
            m.decode(L1_BASE + L1_STRIDE + 5).unwrap(),
            (Region::L1 { cluster: 1 }, 5)
        );
        assert_eq!(m.decode(L2_BASE + 10).unwrap(), (Region::L2, 10));
        assert_eq!(m.decode(L3_BASE).unwrap(), (Region::L3, 0));
        assert!(m.decode(0xdead_beef).is_err());
        // hole between end of L1 bank and next stride
        assert!(m.decode(L1_BASE + m.l1_words).is_err());
    }

    #[test]
    fn latency_increases_down_the_hierarchy() {
        let mut m = mem();
        let (_, l1) = m.read(L1_BASE).unwrap();
        let (_, l2) = m.read(L2_BASE).unwrap();
        let (_, l3) = m.read(L3_BASE).unwrap();
        assert!(l1 < l2 && l2 < l3, "{l1} {l2} {l3}");
    }

    #[test]
    fn read_back_what_was_written() {
        let mut m = mem();
        m.write(L2_BASE + 42, 0xabcd).unwrap();
        assert_eq!(m.read(L2_BASE + 42).unwrap().0, 0xabcd);
        assert_eq!(m.peek(L2_BASE + 42).unwrap(), 0xabcd);
    }

    #[test]
    fn watchpoints_record_old_and_new() {
        let mut m = mem();
        m.poke(L1_BASE + 7, 5).unwrap();
        m.add_watch(3, L1_BASE + 7, L1_BASE + 7, WatchKind::Write);
        m.read(L1_BASE + 7).unwrap(); // read: no hit for write watch
        assert!(!m.has_hits());
        m.write(L1_BASE + 7, 9).unwrap();
        let hits = m.take_hits();
        assert_eq!(
            hits,
            vec![WatchHit {
                id: 3,
                addr: L1_BASE + 7,
                was_write: true,
                old: 5,
                new: 9
            }]
        );
        assert!(!m.has_hits());
    }

    #[test]
    fn access_watch_fires_on_reads_too() {
        let mut m = mem();
        m.add_watch(1, L3_BASE, L3_BASE + 10, WatchKind::Access);
        m.read(L3_BASE + 4).unwrap();
        assert_eq!(m.take_hits().len(), 1);
    }

    #[test]
    fn peek_and_poke_bypass_watches() {
        let mut m = mem();
        m.add_watch(1, L2_BASE, L2_BASE, WatchKind::Access);
        m.poke(L2_BASE, 1).unwrap();
        let _ = m.peek(L2_BASE).unwrap();
        assert!(!m.has_hits());
    }

    #[test]
    fn remove_watch_stops_hits() {
        let mut m = mem();
        m.add_watch(1, L2_BASE, L2_BASE, WatchKind::Write);
        m.remove_watch(1);
        m.write(L2_BASE, 1).unwrap();
        assert!(!m.has_hits());
    }
}
