//! The P2012 memory hierarchy (Fig. 1 of the paper).
//!
//! Three levels, word-addressed:
//!
//! * **L1** — one bank per cluster, shared by the cluster's PEs (lowest
//!   latency; holds intra-cluster data links);
//! * **L2** — chip-wide, used for inter-cluster communication;
//! * **L3** — external memory reached through DMA, used for host↔fabric
//!   exchanges.
//!
//! The debugger's *watchpoints* hook the store/load paths here: every access
//! consults a (normally empty) watch list, and hits accumulate in a buffer
//! that the debugger drains after each simulated cycle. When no watchpoints
//! are set the check is a single branch on an empty `Vec`, keeping the
//! undebuggged fast path honest for the overhead benchmarks (experiment E1).
//!
//! Banks are stored as copy-on-write pages ([`PAGE_WORDS`] words each): a
//! page is either shared (`Arc`, refcounted with every fork and base image
//! that references it) or privately owned. Reads never promote; the first
//! store to a shared page copies just that page. This is what makes
//! [`Memory::fork`] — and with it debugger-session forking and checkpoint
//! base images — O(pages) in pointers rather than O(words) in copies: a
//! thousand forked sessions of the same booted application share one set
//! of page buffers until they actually diverge.

use std::sync::Arc;

use debuginfo::Word;

/// A level of the hierarchy plus its instance (cluster) when relevant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Region {
    L1 { cluster: u16 },
    L2,
    L3,
}

impl Region {
    pub fn name(self) -> String {
        match self {
            Region::L1 { cluster } => format!("L1[{cluster}]"),
            Region::L2 => "L2".to_string(),
            Region::L3 => "L3".to_string(),
        }
    }
}

/// Fixed address-space layout (word addresses).
///
/// * L1 of cluster `c`: `0x1000_0000 + c * 0x0001_0000`
/// * L2: `0x2000_0000`
/// * L3: `0x3000_0000`
#[derive(Debug, Clone)]
pub struct MemoryMap {
    pub clusters: u16,
    pub l1_words: u32,
    pub l2_words: u32,
    pub l3_words: u32,
    pub l1_latency: u32,
    pub l2_latency: u32,
    pub l3_latency: u32,
}

pub const L1_BASE: u32 = 0x1000_0000;
pub const L1_STRIDE: u32 = 0x0001_0000;
pub const L2_BASE: u32 = 0x2000_0000;
pub const L3_BASE: u32 = 0x3000_0000;

impl Default for MemoryMap {
    fn default() -> Self {
        MemoryMap {
            clusters: 2,
            l1_words: 16 * 1024,
            l2_words: 256 * 1024,
            l3_words: 1024 * 1024,
            l1_latency: 1,
            l2_latency: 8,
            l3_latency: 32,
        }
    }
}

impl MemoryMap {
    pub fn l1_base(&self, cluster: u16) -> u32 {
        L1_BASE + u32::from(cluster) * L1_STRIDE
    }

    /// Decode an address into (region, offset).
    pub fn decode(&self, addr: u32) -> Result<(Region, u32), MemError> {
        if (L1_BASE..L1_BASE + u32::from(self.clusters) * L1_STRIDE).contains(&addr) {
            let cluster = ((addr - L1_BASE) / L1_STRIDE) as u16;
            let off = (addr - L1_BASE) % L1_STRIDE;
            if off < self.l1_words {
                return Ok((Region::L1 { cluster }, off));
            }
        } else if (L2_BASE..L2_BASE + self.l2_words).contains(&addr) {
            return Ok((Region::L2, addr - L2_BASE));
        } else if (L3_BASE..L3_BASE + self.l3_words).contains(&addr) {
            return Ok((Region::L3, addr - L3_BASE));
        }
        Err(MemError::Unmapped { addr })
    }

    pub fn latency(&self, region: Region) -> u32 {
        match region {
            Region::L1 { .. } => self.l1_latency,
            Region::L2 => self.l2_latency,
            Region::L3 => self.l3_latency,
        }
    }
}

/// Memory access failure, surfaced to the debugger as a PE fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    Unmapped { addr: u32 },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::Unmapped { addr } => {
                write!(f, "unmapped address 0x{addr:08x}")
            }
        }
    }
}

/// Granularity of the dirty-page tracking used by checkpoint/replay: a
/// bank is split into pages of this many words, and only pages written
/// since the last checkpoint boundary are copied into the next delta.
pub const PAGE_WORDS: u32 = 1024;

/// One dirty-trackable page: a bank (region) plus the page index within
/// it. Ordered so page sets hash and compare deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId {
    pub region: Region,
    pub page: u32,
}

/// One copy-on-write page of bank backing store. `Shared` pages are
/// referenced by forked memories and checkpoint base images; the first
/// store promotes the page to `Owned` by copying it.
#[derive(Debug, Clone)]
enum Page {
    Shared(Arc<[Word]>),
    Owned(Vec<Word>),
}

impl Page {
    #[inline]
    fn as_slice(&self) -> &[Word] {
        match self {
            Page::Shared(p) => p,
            Page::Owned(p) => p,
        }
    }

    /// Private, writable view; copies the page if it is shared.
    #[inline]
    fn make_owned(&mut self) -> &mut [Word] {
        if let Page::Shared(p) = self {
            *self = Page::Owned(p.to_vec());
        }
        match self {
            Page::Owned(p) => p,
            Page::Shared(_) => unreachable!("just promoted"),
        }
    }

    /// Freeze into shared form (fork/snapshot time) and hand out the Arc.
    fn share(&mut self) -> Arc<[Word]> {
        if let Page::Owned(v) = self {
            *self = Page::Shared(Arc::from(std::mem::take(v).into_boxed_slice()));
        }
        match self {
            Page::Shared(p) => Arc::clone(p),
            Page::Owned(_) => unreachable!("just shared"),
        }
    }
}

/// One bank as a vector of COW pages (the last page may be partial).
#[derive(Debug, Clone)]
struct Bank {
    pages: Vec<Page>,
}

impl Bank {
    fn new(words: u32) -> Bank {
        // Untouched banks are all zeros: every full page starts as a
        // reference to one shared zero page, so constructing (and forking)
        // a memory costs pointers, not megabytes.
        let zero: Arc<[Word]> = Arc::from(vec![0; PAGE_WORDS as usize].into_boxed_slice());
        let mut pages = Vec::with_capacity(pages_for(words));
        let mut remaining = words as usize;
        while remaining >= PAGE_WORDS as usize {
            pages.push(Page::Shared(Arc::clone(&zero)));
            remaining -= PAGE_WORDS as usize;
        }
        if remaining > 0 {
            pages.push(Page::Shared(Arc::from(
                vec![0; remaining].into_boxed_slice(),
            )));
        }
        Bank { pages }
    }

    #[inline]
    fn get(&self, off: u32) -> Word {
        self.pages[(off / PAGE_WORDS) as usize].as_slice()[(off % PAGE_WORDS) as usize]
    }

    #[inline]
    fn get_mut(&mut self, off: u32) -> &mut Word {
        &mut self.pages[(off / PAGE_WORDS) as usize].make_owned()[(off % PAGE_WORDS) as usize]
    }

    fn page(&self, page: u32) -> &[Word] {
        self.pages[page as usize].as_slice()
    }

    fn restore_page(&mut self, page: u32, data: &[Word]) {
        // Restores always carry a whole page; replacing the buffer avoids
        // promoting (copying) a shared page only to overwrite it.
        debug_assert_eq!(data.len(), self.pages[page as usize].as_slice().len());
        self.pages[page as usize] = Page::Owned(data.to_vec());
    }

    /// Freeze every page into shared form, returning the Arcs (snapshot).
    fn share(&mut self) -> Vec<Arc<[Word]>> {
        self.pages.iter_mut().map(Page::share).collect()
    }

    /// Freeze every page into shared form without collecting (fork).
    fn share_in_place(&mut self) {
        for p in &mut self.pages {
            p.share();
        }
    }

    fn restore_from(&mut self, shared: &[Arc<[Word]>]) {
        for (p, s) in self.pages.iter_mut().zip(shared) {
            *p = Page::Shared(Arc::clone(s));
        }
    }

    fn hash_into<H: std::hash::Hasher>(&self, h: &mut H) {
        for p in &self.pages {
            for w in p.as_slice() {
                h.write_u32(*w);
            }
        }
    }

    fn owned_words(&self) -> usize {
        self.pages
            .iter()
            .filter(|p| matches!(p, Page::Owned(_)))
            .map(|p| p.as_slice().len())
            .sum()
    }
}

/// A full image of every memory bank — the base a checkpoint chain starts
/// from. Pages are shared with the live memory they were snapshotted
/// from, so taking (and keeping) an image costs refcounts, not copies;
/// deltas (dirty pages) apply on top of this.
#[derive(Debug, Clone)]
pub struct MemImage {
    l1: Vec<Vec<Arc<[Word]>>>,
    l2: Vec<Arc<[Word]>>,
    l3: Vec<Arc<[Word]>>,
}

impl MemImage {
    /// The words of `page` within this image (last page may be partial).
    pub fn page_data(&self, p: PageId) -> &[Word] {
        match p.region {
            Region::L1 { cluster } => &self.l1[cluster as usize][p.page as usize],
            Region::L2 => &self.l2[p.page as usize],
            Region::L3 => &self.l3[p.page as usize],
        }
    }
}

/// Watchpoint trigger kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchKind {
    Write,
    Read,
    Access,
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    id: u32,
    lo: u32,
    hi: u32, // inclusive
    kind: WatchKind,
}

/// One recorded watchpoint hit: which watch, where, the value involved and
/// (for writes) the value it replaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchHit {
    pub id: u32,
    pub addr: u32,
    pub was_write: bool,
    pub old: Word,
    pub new: Word,
}

/// The simulated memory system.
#[derive(Debug, Clone)]
pub struct Memory {
    map: MemoryMap,
    l1: Vec<Bank>,
    l2: Bank,
    l3: Bank,
    watches: Vec<Watch>,
    hits: Vec<WatchHit>,
    /// Dirty-page flags per bank, mirroring the bank layout above, plus an
    /// append-only list of first-touched pages — O(1) marking per store,
    /// and a checkpoint boundary drains the list instead of scanning the
    /// full (mostly idle) hierarchy.
    dirty_l1: Vec<Vec<bool>>,
    dirty_l2: Vec<bool>,
    dirty_l3: Vec<bool>,
    dirty_list: Vec<PageId>,
    /// Total accesses, for the simulator-throughput benchmark (B4).
    pub reads: u64,
    pub writes: u64,
}

fn pages_for(words: u32) -> usize {
    words.div_ceil(PAGE_WORDS) as usize
}

impl Memory {
    pub fn new(map: MemoryMap) -> Self {
        let l1 = (0..map.clusters).map(|_| Bank::new(map.l1_words)).collect();
        Memory {
            l2: Bank::new(map.l2_words),
            l3: Bank::new(map.l3_words),
            l1,
            dirty_l1: (0..map.clusters)
                .map(|_| vec![false; pages_for(map.l1_words)])
                .collect(),
            dirty_l2: vec![false; pages_for(map.l2_words)],
            dirty_l3: vec![false; pages_for(map.l3_words)],
            dirty_list: Vec::new(),
            map,
            watches: Vec::new(),
            hits: Vec::new(),
            reads: 0,
            writes: 0,
        }
    }

    pub fn map(&self) -> &MemoryMap {
        &self.map
    }

    fn mark_dirty(&mut self, region: Region, off: u32) {
        let page = off / PAGE_WORDS;
        let flag = match region {
            Region::L1 { cluster } => &mut self.dirty_l1[cluster as usize][page as usize],
            Region::L2 => &mut self.dirty_l2[page as usize],
            Region::L3 => &mut self.dirty_l3[page as usize],
        };
        if !*flag {
            *flag = true;
            self.dirty_list.push(PageId { region, page });
        }
    }

    #[inline]
    fn bank(&self, region: Region) -> &Bank {
        match region {
            Region::L1 { cluster } => &self.l1[cluster as usize],
            Region::L2 => &self.l2,
            Region::L3 => &self.l3,
        }
    }

    #[inline]
    fn bank_mut(&mut self, region: Region) -> &mut Bank {
        match region {
            Region::L1 { cluster } => &mut self.l1[cluster as usize],
            Region::L2 => &mut self.l2,
            Region::L3 => &mut self.l3,
        }
    }

    /// Load a word; returns `(value, stall_cycles)`. Reads never promote a
    /// shared page — forked sessions stay deduplicated under read-mostly
    /// inspection workloads.
    pub fn read(&mut self, addr: u32) -> Result<(Word, u32), MemError> {
        self.reads += 1;
        let watched = self.match_watch(addr, false);
        let (region, off) = self.map.decode(addr)?;
        let lat = self.map.latency(region);
        let v = self.bank(region).get(off);
        if let Some(id) = watched {
            self.hits.push(WatchHit {
                id,
                addr,
                was_write: false,
                old: v,
                new: v,
            });
        }
        Ok((v, lat))
    }

    /// Store a word; returns the stall cycles.
    pub fn write(&mut self, addr: u32, value: Word) -> Result<u32, MemError> {
        self.writes += 1;
        let watched = self.match_watch(addr, true);
        let (region, off) = self.map.decode(addr)?;
        self.mark_dirty(region, off);
        let lat = self.map.latency(region);
        let cell = self.bank_mut(region).get_mut(off);
        let old = *cell;
        *cell = value;
        if let Some(id) = watched {
            self.hits.push(WatchHit {
                id,
                addr,
                was_write: true,
                old,
                new: value,
            });
        }
        Ok(lat)
    }

    /// Read without latency accounting or watch triggering: the debugger's
    /// own inspection path (`print`, link occupancy displays) must not
    /// perturb the simulation — the paper stresses that debugger slowdown
    /// "does not alter the execution semantic".
    pub fn peek(&self, addr: u32) -> Result<Word, MemError> {
        let (region, off) = self.map.decode(addr)?;
        Ok(self.bank(region).get(off))
    }

    /// Write without latency/watch side effects: used by loaders and by the
    /// debugger's token-alteration commands (§III "Altering the Normal
    /// Execution").
    pub fn poke(&mut self, addr: u32, value: Word) -> Result<(), MemError> {
        let (region, off) = self.map.decode(addr)?;
        self.mark_dirty(region, off);
        *self.bank_mut(region).get_mut(off) = value;
        Ok(())
    }

    fn match_watch(&self, addr: u32, is_write: bool) -> Option<u32> {
        if self.watches.is_empty() {
            return None;
        }
        self.watches
            .iter()
            .find(|w| {
                addr >= w.lo
                    && addr <= w.hi
                    && match w.kind {
                        WatchKind::Write => is_write,
                        WatchKind::Read => !is_write,
                        WatchKind::Access => true,
                    }
            })
            .map(|w| w.id)
    }

    /// Install a watch over `[lo, hi]` (inclusive, word addresses).
    pub fn add_watch(&mut self, id: u32, lo: u32, hi: u32, kind: WatchKind) {
        self.watches.push(Watch { id, lo, hi, kind });
    }

    pub fn remove_watch(&mut self, id: u32) {
        self.watches.retain(|w| w.id != id);
    }

    /// Drain the accumulated watch hits (debugger, once per cycle).
    pub fn take_hits(&mut self) -> Vec<WatchHit> {
        std::mem::take(&mut self.hits)
    }

    pub fn has_hits(&self) -> bool {
        !self.hits.is_empty()
    }

    // ---- checkpoint/replay support ----------------------------------------

    /// Drain the dirty-page set (sorted) and clear all flags. Called at
    /// each checkpoint boundary so the next interval starts clean.
    pub fn take_dirty(&mut self) -> Vec<PageId> {
        let mut list = std::mem::take(&mut self.dirty_list);
        for p in &list {
            match p.region {
                Region::L1 { cluster } => {
                    self.dirty_l1[cluster as usize][p.page as usize] = false;
                }
                Region::L2 => self.dirty_l2[p.page as usize] = false,
                Region::L3 => self.dirty_l3[p.page as usize] = false,
            }
        }
        list.sort_unstable();
        list
    }

    /// The live words of `page` (last page of a bank may be partial).
    pub fn page_data(&self, p: PageId) -> &[Word] {
        self.bank(p.region).page(p.page)
    }

    /// Overwrite one page with checkpointed content. Bypasses dirty
    /// marking: a restore rewinds the memory image, it is not a write the
    /// replayed execution performed.
    pub fn restore_page(&mut self, p: PageId, data: &[Word]) {
        self.bank_mut(p.region).restore_page(p.page, data);
    }

    /// Full image of all banks (checkpoint base image). Freezes every page
    /// into shared form, so the image and the live memory reference the
    /// same buffers until the simulation writes again — taking a baseline
    /// is O(pages), not O(words).
    pub fn snapshot_full(&mut self) -> MemImage {
        MemImage {
            l1: self.l1.iter_mut().map(Bank::share).collect(),
            l2: self.l2.share(),
            l3: self.l3.share(),
        }
    }

    /// Restore every bank from a full image (shared page references — the
    /// next write promotes). Clears pending watch hits (they belong to the
    /// abandoned timeline) but keeps the installed watches — like GDB,
    /// watchpoints survive time travel.
    pub fn restore_full(&mut self, img: &MemImage) {
        for (bank, shared) in self.l1.iter_mut().zip(&img.l1) {
            bank.restore_from(shared);
        }
        self.l2.restore_from(&img.l2);
        self.l3.restore_from(&img.l3);
        self.hits.clear();
    }

    /// Copy-on-write fork: every page of every bank becomes shared between
    /// `self` and the returned memory; the first store on either side
    /// copies just the page it touches. Watches, dirty tracking and access
    /// counters carry over verbatim.
    pub fn fork(&mut self) -> Memory {
        for b in &mut self.l1 {
            b.share_in_place();
        }
        self.l2.share_in_place();
        self.l3.share_in_place();
        self.clone()
    }

    /// Words privately owned by this memory (copy-on-write pages actually
    /// duplicated, not shared with a fork ancestor). The multiverse
    /// universe pool uses this to account real bytes, not address space.
    pub fn owned_words(&self) -> usize {
        self.l1.iter().map(Bank::owned_words).sum::<usize>()
            + self.l2.owned_words()
            + self.l3.owned_words()
    }

    /// Feed the complete memory content to a hasher (baseline hash of a
    /// checkpoint chain; boundary hashes only cover dirty pages). Generic
    /// (not `dyn`) on purpose: this walks every word of every bank, and
    /// monomorphisation lets the hasher's word fast path inline.
    pub fn hash_full<H: std::hash::Hasher>(&self, h: &mut H) {
        for bank in &self.l1 {
            bank.hash_into(h);
        }
        self.l2.hash_into(h);
        self.l3.hash_into(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        Memory::new(MemoryMap::default())
    }

    #[test]
    fn decode_all_regions() {
        let m = MemoryMap::default();
        assert_eq!(m.decode(L1_BASE).unwrap().0, Region::L1 { cluster: 0 });
        assert_eq!(
            m.decode(L1_BASE + L1_STRIDE + 5).unwrap(),
            (Region::L1 { cluster: 1 }, 5)
        );
        assert_eq!(m.decode(L2_BASE + 10).unwrap(), (Region::L2, 10));
        assert_eq!(m.decode(L3_BASE).unwrap(), (Region::L3, 0));
        assert!(m.decode(0xdead_beef).is_err());
        // hole between end of L1 bank and next stride
        assert!(m.decode(L1_BASE + m.l1_words).is_err());
    }

    #[test]
    fn latency_increases_down_the_hierarchy() {
        let mut m = mem();
        let (_, l1) = m.read(L1_BASE).unwrap();
        let (_, l2) = m.read(L2_BASE).unwrap();
        let (_, l3) = m.read(L3_BASE).unwrap();
        assert!(l1 < l2 && l2 < l3, "{l1} {l2} {l3}");
    }

    #[test]
    fn read_back_what_was_written() {
        let mut m = mem();
        m.write(L2_BASE + 42, 0xabcd).unwrap();
        assert_eq!(m.read(L2_BASE + 42).unwrap().0, 0xabcd);
        assert_eq!(m.peek(L2_BASE + 42).unwrap(), 0xabcd);
    }

    #[test]
    fn watchpoints_record_old_and_new() {
        let mut m = mem();
        m.poke(L1_BASE + 7, 5).unwrap();
        m.add_watch(3, L1_BASE + 7, L1_BASE + 7, WatchKind::Write);
        m.read(L1_BASE + 7).unwrap(); // read: no hit for write watch
        assert!(!m.has_hits());
        m.write(L1_BASE + 7, 9).unwrap();
        let hits = m.take_hits();
        assert_eq!(
            hits,
            vec![WatchHit {
                id: 3,
                addr: L1_BASE + 7,
                was_write: true,
                old: 5,
                new: 9
            }]
        );
        assert!(!m.has_hits());
    }

    #[test]
    fn access_watch_fires_on_reads_too() {
        let mut m = mem();
        m.add_watch(1, L3_BASE, L3_BASE + 10, WatchKind::Access);
        m.read(L3_BASE + 4).unwrap();
        assert_eq!(m.take_hits().len(), 1);
    }

    #[test]
    fn peek_and_poke_bypass_watches() {
        let mut m = mem();
        m.add_watch(1, L2_BASE, L2_BASE, WatchKind::Access);
        m.poke(L2_BASE, 1).unwrap();
        let _ = m.peek(L2_BASE).unwrap();
        assert!(!m.has_hits());
    }

    #[test]
    fn remove_watch_stops_hits() {
        let mut m = mem();
        m.add_watch(1, L2_BASE, L2_BASE, WatchKind::Write);
        m.remove_watch(1);
        m.write(L2_BASE, 1).unwrap();
        assert!(!m.has_hits());
    }

    #[test]
    fn writes_mark_pages_dirty_reads_do_not() {
        let mut m = mem();
        m.read(L2_BASE).unwrap();
        assert!(m.take_dirty().is_empty(), "reads must not dirty pages");
        m.write(L2_BASE, 1).unwrap();
        m.write(L2_BASE + 1, 2).unwrap(); // same page: no second entry
        m.poke(L3_BASE + PAGE_WORDS, 3).unwrap(); // pokes dirty too
        let dirty = m.take_dirty();
        assert_eq!(
            dirty,
            vec![
                PageId {
                    region: Region::L2,
                    page: 0
                },
                PageId {
                    region: Region::L3,
                    page: 1
                },
            ]
        );
        // Drained: flags reset, next write re-marks.
        assert!(m.take_dirty().is_empty());
        m.write(L2_BASE, 9).unwrap();
        assert_eq!(m.take_dirty().len(), 1);
    }

    #[test]
    fn restore_page_bypasses_dirty_marking() {
        let mut m = mem();
        m.write(L1_BASE + 3, 77).unwrap();
        let page = PageId {
            region: Region::L1 { cluster: 0 },
            page: 0,
        };
        let saved: Vec<Word> = m.page_data(page).to_vec();
        assert_eq!(saved[3], 77);
        m.take_dirty();
        m.restore_page(page, &saved);
        assert!(m.take_dirty().is_empty(), "restore is not an app write");
    }

    #[test]
    fn full_image_round_trip() {
        let mut m = mem();
        m.write(L1_BASE + 1, 11).unwrap();
        m.write(L2_BASE + 2, 22).unwrap();
        let img = m.snapshot_full();
        m.write(L1_BASE + 1, 99).unwrap();
        m.write(L3_BASE, 5).unwrap();
        m.restore_full(&img);
        assert_eq!(m.peek(L1_BASE + 1).unwrap(), 11);
        assert_eq!(m.peek(L2_BASE + 2).unwrap(), 22);
        assert_eq!(m.peek(L3_BASE).unwrap(), 0);
        assert_eq!(
            img.page_data(PageId {
                region: Region::L2,
                page: 0
            })[2],
            22
        );
    }

    #[test]
    fn forked_memories_do_not_alias() {
        let mut m = mem();
        m.write(L2_BASE, 1).unwrap();
        m.write(L3_BASE + 9, 7).unwrap();
        let mut child = m.fork();
        // Writes on either side stay invisible to the other.
        child.write(L2_BASE, 100).unwrap();
        m.write(L3_BASE + 9, 200).unwrap();
        assert_eq!(m.peek(L2_BASE).unwrap(), 1);
        assert_eq!(child.peek(L2_BASE).unwrap(), 100);
        assert_eq!(m.peek(L3_BASE + 9).unwrap(), 200);
        assert_eq!(child.peek(L3_BASE + 9).unwrap(), 7);
        // Untouched words are shared and identical.
        assert_eq!(
            m.peek(L1_BASE + 5).unwrap(),
            child.peek(L1_BASE + 5).unwrap()
        );
    }

    #[test]
    fn fork_preserves_dirty_tracking_independence() {
        let mut m = mem();
        m.write(L2_BASE, 1).unwrap();
        m.take_dirty();
        let mut child = m.fork();
        child.write(L2_BASE + 1, 2).unwrap();
        assert_eq!(child.take_dirty().len(), 1);
        assert!(m.take_dirty().is_empty(), "parent saw the child's write");
    }

    #[test]
    fn snapshot_stays_frozen_while_live_memory_moves_on() {
        let mut m = mem();
        m.write(L2_BASE + 3, 33).unwrap();
        let img = m.snapshot_full();
        m.write(L2_BASE + 3, 44).unwrap();
        let p = PageId {
            region: Region::L2,
            page: 0,
        };
        assert_eq!(img.page_data(p)[3], 33, "image must not track live writes");
        assert_eq!(m.peek(L2_BASE + 3).unwrap(), 44);
        m.restore_full(&img);
        assert_eq!(m.peek(L2_BASE + 3).unwrap(), 33);
    }

    #[test]
    fn last_partial_page_has_short_slice() {
        let map = MemoryMap {
            l2_words: PAGE_WORDS + 10,
            ..MemoryMap::default()
        };
        let mut m = Memory::new(map);
        m.write(L2_BASE + PAGE_WORDS + 3, 1).unwrap();
        let dirty = m.take_dirty();
        assert_eq!(dirty.len(), 1);
        assert_eq!(m.page_data(dirty[0]).len(), 10);
    }
}
