//! Static cycle-cost model of the ISA — the platform-side half of WCET
//! analysis.
//!
//! The functional simulator's timing contract is simple and exact: every
//! retired instruction costs one cycle, and a `LoadMem`/`StoreMem` stalls
//! the PE for the target region's latency minus one additional cycles
//! (see `vm.rs`). Blocking traps cost one cycle once they unblock; the
//! waiting time is scheduling, not computation, so it is excluded from
//! per-firing execution-time bounds.
//!
//! The analyzer in `crates/sched` consumes these tables instead of
//! re-deriving them, so a platform retune (say, a slower L3) moves every
//! static WCET the same way it moves the simulator.

use crate::isa::Insn;
use crate::memory::{MemoryMap, Region};

/// Cycles to retire any instruction (the simulator is single-issue,
/// one retirement per cycle).
pub const BASE_COST: u32 = 1;

/// Cycles a runtime trap costs once it does not block: the trap retires
/// in one cycle; handler work is modelled on the host and free.
pub const TRAP_COST: u32 = 1;

/// Cycles of a complete runtime stub invocation as kernelc emits it:
/// `Call` + `Trap` + `Ret`.
pub const STUB_CALL_COST: u32 = 2 * BASE_COST + TRAP_COST;

/// Inclusive `[best, worst]` cycle cost of one raw memory access whose
/// target region is statically known.
pub fn access_cost(map: &MemoryMap, region: Region) -> (u32, u32) {
    let lat = map.latency(region).max(1);
    (lat, lat)
}

/// Inclusive `[best, worst]` cycle cost of a raw memory access about
/// which nothing is known: best case a local L1 hit, worst case L3.
pub fn unknown_access_cost(map: &MemoryMap) -> (u32, u32) {
    let lats = [map.l1_latency, map.l2_latency, map.l3_latency];
    (
        lats.iter().copied().min().unwrap_or(1).max(1),
        lats.iter().copied().max().unwrap_or(1).max(1),
    )
}

/// Inclusive `[best, worst]` cycle cost of a raw access whose address is
/// only known as a word interval `[lo, hi]`: the envelope over every
/// region the interval intersects (an interval reaching outside every
/// region keeps the unknown-access envelope — the access would fault,
/// and faulting cost is not the analyzer's concern).
pub fn access_cost_bounds(map: &MemoryMap, lo: u32, hi: u32) -> (u32, u32) {
    match (map.decode(lo), map.decode(hi)) {
        (Ok((ra, _)), Ok((rb, _))) if ra == rb => access_cost(map, ra),
        _ => unknown_access_cost(map),
    }
}

/// Inclusive `[best, worst]` cycle cost of one instruction, excluding
/// callee/blocking time. `mem_addr` is the static `[lo, hi]` word-address
/// interval for `LoadMem`/`StoreMem` operands when the caller knows one.
pub fn insn_cost(map: &MemoryMap, insn: &Insn, mem_addr: Option<(u32, u32)>) -> (u32, u32) {
    match insn {
        Insn::LoadMem | Insn::StoreMem => match mem_addr {
            Some((lo, hi)) => access_cost_bounds(map, lo, hi),
            None => unknown_access_cost(map),
        },
        Insn::Trap { .. } => (TRAP_COST, TRAP_COST),
        _ => (BASE_COST, BASE_COST),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{L1_BASE, L2_BASE, L3_BASE};

    #[test]
    fn memory_costs_follow_the_map_latencies() {
        let map = MemoryMap::default();
        assert_eq!(access_cost(&map, Region::L1 { cluster: 0 }), (1, 1));
        assert_eq!(access_cost(&map, Region::L2), (8, 8));
        assert_eq!(access_cost(&map, Region::L3), (32, 32));
        assert_eq!(unknown_access_cost(&map), (1, 32));
    }

    #[test]
    fn interval_costs_collapse_within_one_region_and_widen_across() {
        let map = MemoryMap::default();
        assert_eq!(access_cost_bounds(&map, L2_BASE, L2_BASE + 100), (8, 8));
        assert_eq!(access_cost_bounds(&map, L1_BASE, L3_BASE + 4), (1, 32));
    }

    #[test]
    fn insn_costs_match_the_simulator_contract() {
        let map = MemoryMap::default();
        assert_eq!(insn_cost(&map, &Insn::Add, None), (1, 1));
        assert_eq!(insn_cost(&map, &Insn::LoadMem, None), (1, 32));
        assert_eq!(
            insn_cost(&map, &Insn::LoadMem, Some((L3_BASE, L3_BASE))),
            (32, 32)
        );
        let trap = Insn::Trap {
            id: 0,
            argc: 0,
            retc: 0,
        };
        assert_eq!(insn_cost(&map, &trap, None), (TRAP_COST, TRAP_COST));
        assert_eq!(STUB_CALL_COST, 3);
    }
}
