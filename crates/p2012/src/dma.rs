//! DMA controllers.
//!
//! On P2012 host↔fabric exchanges go through DMA with the L3 memory
//! (Fig. 1), and the case study's graph shows DMA-assisted control links
//! (the dashed arrows of Fig. 4). A [`DmaEngine`] copies word blocks between
//! any two mapped regions at a fixed words-per-cycle rate; completion is
//! polled by the runtime, which keeps blocked PEs parked with
//! [`crate::vm::BlockReason::DmaWait`] until their transfer retires.
//!
//! Transfers go through [`Memory::read`]/[`Memory::write`] so watchpoints
//! fire on DMA traffic too — the debugger must see token payloads no matter
//! which agent moves them.

use crate::memory::{MemError, Memory};

/// A block-copy request (word addresses, word count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaRequest {
    pub src: u32,
    pub dst: u32,
    pub len: u32,
}

/// Status of a submitted transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaStatus {
    InFlight {
        remaining: u32,
    },
    Done,
    /// Unknown id, or already retired.
    Unknown,
    /// The transfer touched an unmapped address and was aborted.
    Faulted(MemError),
}

#[derive(Debug, Clone)]
struct Transfer {
    id: u32,
    req: DmaRequest,
    copied: u32,
    state: DmaStatus,
}

/// One DMA controller.
#[derive(Debug, Clone)]
pub struct DmaEngine {
    /// Words moved per simulated cycle.
    pub words_per_cycle: u32,
    transfers: Vec<Transfer>,
    next_id: u32,
    /// Total words copied, for the platform-throughput benchmark.
    pub words_copied: u64,
}

impl DmaEngine {
    pub fn new(words_per_cycle: u32) -> Self {
        assert!(words_per_cycle > 0, "DMA rate must be positive");
        DmaEngine {
            words_per_cycle,
            transfers: Vec::new(),
            next_id: 0,
            words_copied: 0,
        }
    }

    /// Queue a transfer; returns its id for later polling.
    pub fn submit(&mut self, req: DmaRequest) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        self.transfers.push(Transfer {
            id,
            req,
            copied: 0,
            state: DmaStatus::InFlight { remaining: req.len },
        });
        id
    }

    pub fn status(&self, id: u32) -> DmaStatus {
        self.transfers
            .iter()
            .find(|t| t.id == id)
            .map_or(DmaStatus::Unknown, |t| t.state)
    }

    /// Drop a completed (or faulted) transfer from the table.
    pub fn retire(&mut self, id: u32) {
        self.transfers
            .retain(|t| t.id != id || matches!(t.state, DmaStatus::InFlight { .. }));
    }

    /// Number of transfers still in flight.
    pub fn in_flight(&self) -> usize {
        self.transfers
            .iter()
            .filter(|t| matches!(t.state, DmaStatus::InFlight { .. }))
            .count()
    }

    /// Feed the engine's state (including every queued transfer) to a
    /// hasher, for the replay engine's divergence check. `Clone` of the
    /// whole engine is the snapshot; this is its fingerprint.
    pub fn hash_state(&self, h: &mut dyn std::hash::Hasher) {
        h.write_u32(self.words_per_cycle);
        h.write_u32(self.next_id);
        h.write_u64(self.words_copied);
        h.write_usize(self.transfers.len());
        for t in &self.transfers {
            h.write_u32(t.id);
            h.write_u32(t.req.src);
            h.write_u32(t.req.dst);
            h.write_u32(t.req.len);
            h.write_u32(t.copied);
            h.write(format!("{:?}", t.state).as_bytes());
        }
    }

    /// Advance every in-flight transfer by one cycle.
    pub fn step(&mut self, mem: &mut Memory) {
        for t in &mut self.transfers {
            if !matches!(t.state, DmaStatus::InFlight { .. }) {
                continue;
            }
            let budget = self.words_per_cycle.min(t.req.len - t.copied);
            for i in 0..budget {
                let off = t.copied + i;
                let word = match mem.read(t.req.src + off) {
                    Ok((w, _)) => w,
                    Err(e) => {
                        t.state = DmaStatus::Faulted(e);
                        break;
                    }
                };
                if let Err(e) = mem.write(t.req.dst + off, word) {
                    t.state = DmaStatus::Faulted(e);
                    break;
                }
                self.words_copied += 1;
            }
            if matches!(t.state, DmaStatus::Faulted(_)) {
                continue;
            }
            t.copied += budget;
            t.state = if t.copied == t.req.len {
                DmaStatus::Done
            } else {
                DmaStatus::InFlight {
                    remaining: t.req.len - t.copied,
                }
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{Memory, MemoryMap, L2_BASE, L3_BASE};

    #[test]
    fn transfer_completes_at_configured_rate() {
        let mut mem = Memory::new(MemoryMap::default());
        for i in 0..10 {
            mem.poke(L3_BASE + i, 100 + i).unwrap();
        }
        let mut dma = DmaEngine::new(4);
        let id = dma.submit(DmaRequest {
            src: L3_BASE,
            dst: L2_BASE,
            len: 10,
        });
        dma.step(&mut mem);
        assert_eq!(dma.status(id), DmaStatus::InFlight { remaining: 6 });
        dma.step(&mut mem);
        dma.step(&mut mem);
        assert_eq!(dma.status(id), DmaStatus::Done);
        for i in 0..10 {
            assert_eq!(mem.peek(L2_BASE + i).unwrap(), 100 + i);
        }
        dma.retire(id);
        assert_eq!(dma.status(id), DmaStatus::Unknown);
    }

    #[test]
    fn faulting_transfer_reports_and_stops() {
        let mut mem = Memory::new(MemoryMap::default());
        let mut dma = DmaEngine::new(8);
        let id = dma.submit(DmaRequest {
            src: 0xdead_0000,
            dst: L2_BASE,
            len: 4,
        });
        dma.step(&mut mem);
        assert!(matches!(dma.status(id), DmaStatus::Faulted(_)));
        // A faulted transfer does not progress further.
        dma.step(&mut mem);
        assert!(matches!(dma.status(id), DmaStatus::Faulted(_)));
    }

    #[test]
    fn dma_traffic_triggers_watchpoints() {
        let mut mem = Memory::new(MemoryMap::default());
        mem.add_watch(9, L2_BASE, L2_BASE + 3, crate::memory::WatchKind::Write);
        let mut dma = DmaEngine::new(2);
        dma.submit(DmaRequest {
            src: L3_BASE,
            dst: L2_BASE,
            len: 2,
        });
        dma.step(&mut mem);
        assert_eq!(mem.take_hits().len(), 2);
    }

    #[test]
    fn zero_length_transfer_is_done_after_one_step() {
        // Pinned behavior: a zero-length request is accepted, copies
        // nothing, and completes on the first step (copied == len == 0).
        let mut mem = Memory::new(MemoryMap::default());
        let mut dma = DmaEngine::new(4);
        let id = dma.submit(DmaRequest {
            src: L3_BASE,
            dst: L2_BASE,
            len: 0,
        });
        assert_eq!(dma.status(id), DmaStatus::InFlight { remaining: 0 });
        assert_eq!(dma.in_flight(), 1);
        dma.step(&mut mem);
        assert_eq!(dma.status(id), DmaStatus::Done);
        assert_eq!(dma.words_copied, 0);
    }

    #[test]
    fn overlapping_src_dst_copies_sequentially() {
        // Pinned behavior: words move one at a time in ascending order, so
        // a forward-overlapping copy (dst = src + 1) propagates the first
        // word through the whole destination window — memmove semantics
        // are NOT provided.
        let mut mem = Memory::new(MemoryMap::default());
        for i in 0..4 {
            mem.poke(L2_BASE + i, 10 + i).unwrap();
        }
        let mut dma = DmaEngine::new(8);
        let id = dma.submit(DmaRequest {
            src: L2_BASE,
            dst: L2_BASE + 1,
            len: 3,
        });
        dma.step(&mut mem);
        assert_eq!(dma.status(id), DmaStatus::Done);
        // [10, 11, 12, 13] -> [10, 10, 10, 10]: each copied word is the
        // one the previous iteration just wrote.
        for i in 0..4 {
            assert_eq!(mem.peek(L2_BASE + i).unwrap(), 10);
        }
    }

    #[test]
    fn retire_of_unknown_id_is_a_noop() {
        // Pinned behavior: retiring an id that was never submitted (or was
        // already retired) does nothing and disturbs no live transfer.
        let mut mem = Memory::new(MemoryMap::default());
        let mut dma = DmaEngine::new(1);
        let live = dma.submit(DmaRequest {
            src: L3_BASE,
            dst: L2_BASE,
            len: 2,
        });
        dma.retire(live + 99);
        assert_eq!(dma.status(live + 99), DmaStatus::Unknown);
        assert_eq!(dma.in_flight(), 1);
        // An in-flight transfer survives even a retire of its own id.
        dma.retire(live);
        assert!(matches!(dma.status(live), DmaStatus::InFlight { .. }));
        dma.step(&mut mem);
        dma.step(&mut mem);
        assert_eq!(dma.status(live), DmaStatus::Done);
    }

    fn engine_hash(d: &DmaEngine) -> u64 {
        use std::hash::Hasher;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        d.hash_state(&mut h);
        h.finish()
    }

    #[test]
    fn checkpoint_mid_transfer_replays_completion_at_same_cycle() {
        // A checkpoint taken while a transfer is in flight must capture the
        // pending retire: restoring the snapshot (engine clone + memory
        // image) and re-stepping completes the transfer after exactly the
        // same number of cycles, with identical memory and state hash.
        let mut mem = Memory::new(MemoryMap::default());
        for i in 0..12 {
            mem.poke(L3_BASE + i, 200 + i).unwrap();
        }
        let mut dma = DmaEngine::new(4);
        let id = dma.submit(DmaRequest {
            src: L3_BASE,
            dst: L2_BASE,
            len: 12,
        });
        dma.step(&mut mem); // 4 of 12 words copied
        assert_eq!(dma.status(id), DmaStatus::InFlight { remaining: 8 });

        // Checkpoint: whole-engine clone plus full memory image.
        let snap_dma = dma.clone();
        let snap_mem = mem.snapshot_full();

        // Original timeline: completes after two more steps.
        dma.step(&mut mem);
        dma.step(&mut mem);
        assert_eq!(dma.status(id), DmaStatus::Done);
        let final_hash = engine_hash(&dma);

        // Restore and replay: the pending retire is still there, the
        // remaining words land on the same cycles, the hash matches.
        let mut dma2 = snap_dma;
        mem.restore_full(&snap_mem);
        assert_eq!(dma2.status(id), DmaStatus::InFlight { remaining: 8 });
        assert_eq!(dma2.in_flight(), 1);
        dma2.step(&mut mem);
        assert_eq!(dma2.status(id), DmaStatus::InFlight { remaining: 4 });
        dma2.step(&mut mem);
        assert_eq!(dma2.status(id), DmaStatus::Done);
        for i in 0..12 {
            assert_eq!(mem.peek(L2_BASE + i).unwrap(), 200 + i);
        }
        assert_eq!(engine_hash(&dma2), final_hash);
        // Retiring in the replay works exactly like the original.
        dma2.retire(id);
        assert_eq!(dma2.status(id), DmaStatus::Unknown);
    }

    #[test]
    fn hash_distinguishes_transfer_progress() {
        let mut mem = Memory::new(MemoryMap::default());
        let mut dma = DmaEngine::new(1);
        dma.submit(DmaRequest {
            src: L3_BASE,
            dst: L2_BASE,
            len: 3,
        });
        let h0 = engine_hash(&dma);
        dma.step(&mut mem);
        let h1 = engine_hash(&dma);
        assert_ne!(h0, h1, "progress must change the fingerprint");
        assert_eq!(
            engine_hash(&dma.clone()),
            h1,
            "clone is a faithful snapshot"
        );
    }

    #[test]
    fn several_concurrent_transfers() {
        let mut mem = Memory::new(MemoryMap::default());
        let mut dma = DmaEngine::new(1);
        let a = dma.submit(DmaRequest {
            src: L3_BASE,
            dst: L2_BASE,
            len: 2,
        });
        let b = dma.submit(DmaRequest {
            src: L3_BASE + 100,
            dst: L2_BASE + 100,
            len: 1,
        });
        assert_eq!(dma.in_flight(), 2);
        dma.step(&mut mem);
        assert_eq!(dma.status(b), DmaStatus::Done);
        assert!(matches!(dma.status(a), DmaStatus::InFlight { .. }));
        dma.step(&mut mem);
        assert_eq!(dma.status(a), DmaStatus::Done);
        assert_eq!(dma.in_flight(), 0);
    }
}
