//! Deterministic functional simulator of the *Platform 2012* MPSoC.
//!
//! The paper's debugger targets the P2012 **functional simulator** (no
//! silicon existed at the time): a SystemC program where every processing
//! element is a cooperative user-level thread. This crate reproduces that
//! observable machine:
//!
//! * clusters of STxP70-class **processing elements** (Fig. 1), each running
//!   a stack-machine bytecode program ([`vm`]) with call frames, locals and
//!   source-line debug info — enough machine state for a real source-level
//!   debugger to stop, step and inspect;
//! * a shared **memory hierarchy** ([`memory`]): per-cluster L1, chip-wide
//!   L2, external L3, with distinct access latencies and watchpoint support;
//! * **DMA engines** ([`dma`]) performing host↔fabric block transfers;
//! * a **cooperative, cycle-stepped scheduler** ([`platform`]): one global
//!   clock, PEs advanced in a fixed order each cycle, so every run with the
//!   same inputs produces the same interleaving — the determinism the paper
//!   relies on for non-intrusive debugging;
//! * a **trap interface** ([`trap`]): programs call into the runtime
//!   (the PEDF framework, implemented in the `pedf` crate) through `Trap`
//!   instructions wrapped in symbol-carrying stub functions, which is what
//!   lets the debugger observe framework activity purely through breakpoints.

pub mod cost;
pub mod dma;
pub mod isa;
pub mod memory;
pub mod platform;
pub mod trap;
pub mod vm;

pub use dma::{DmaEngine, DmaRequest, DmaStatus};
pub use isa::{Insn, Program, ProgramBuilder};
pub use memory::{
    MemError, MemImage, Memory, MemoryMap, PageId, Region, WatchHit, WatchKind, PAGE_WORDS,
};
pub use platform::{
    ClusterId, CycleReport, PeClass, PeId, Platform, PlatformConfig, PlatformState,
};
pub use trap::{NullHandler, TrapCtx, TrapHandler, TrapResult};
pub use vm::{
    BlockReason, Frame, PeState, PeStatus, StepEvent, VmFault, MAX_CALL_DEPTH, MAX_OPERAND_STACK,
};

pub use debuginfo::{CodeAddr, Word};
