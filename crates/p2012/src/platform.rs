//! The assembled platform: clusters, PEs, host, memories, DMA and the
//! cooperative cycle-stepped scheduler.
//!
//! Fig. 1 of the paper: a general-purpose host processor plus clusters of
//! STxP70 processing elements (optionally with wired hardware accelerators),
//! per-cluster shared L1, chip-wide L2 and external L3 behind DMA.
//!
//! Scheduling is deliberately primitive and deterministic — each cycle every
//! PE in index order advances by at most one instruction, exactly like the
//! SystemC functional simulator's cooperative user-level threads. The same
//! program and inputs therefore always produce the same interleaving, which
//! is what makes the paper's breakpoint-heavy debugging non-intrusive.

use debuginfo::{CodeAddr, Word};

use crate::dma::DmaEngine;
use crate::isa::Program;
use crate::memory::{Memory, MemoryMap};
use crate::trap::{TrapCtx, TrapHandler, TrapResult};
use crate::vm::{PeState, PeStatus, StepEvent, VmFault};

/// Index of a processing element (global, across clusters; the host is the
/// last id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeId(pub u16);

impl PeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterId(pub u16);

/// Kind of processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeClass {
    /// STxP70 configurable processor (fabric).
    Stxp70,
    /// Wired hardware accelerator controlled by its cluster (filters are
    /// "intended to be synthesized into hardware accelerators", §IV-C).
    HwAccel,
    /// The general-purpose host processor.
    ArmHost,
}

impl PeClass {
    pub fn name(self) -> &'static str {
        match self {
            PeClass::Stxp70 => "STxP70",
            PeClass::HwAccel => "HWPE",
            PeClass::ArmHost => "ARM-host",
        }
    }
}

/// Static description of one PE.
#[derive(Debug, Clone)]
pub struct PeInfo {
    pub id: PeId,
    pub class: PeClass,
    /// Cluster index; the host reports the pseudo-cluster `u16::MAX`.
    pub cluster: u16,
    pub name: String,
}

/// Platform shape. The default (2 clusters × 4 PEs + 1 accelerator, one
/// host) is the configuration used by every experiment unless stated
/// otherwise in EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    pub clusters: u16,
    pub pes_per_cluster: u16,
    pub accels_per_cluster: u16,
    pub mem: MemoryMap,
    pub dma_words_per_cycle: u32,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            clusters: 2,
            pes_per_cluster: 4,
            accels_per_cluster: 1,
            mem: MemoryMap::default(),
            dma_words_per_cycle: 4,
        }
    }
}

/// Aggregate counters for one simulated cycle (cheap enough for the fast
/// path; the debugger inspects PE state directly for anything richer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleReport {
    pub executed: u32,
    pub traps: u32,
    pub completions: u32,
    pub faults: u32,
}

impl CycleReport {
    pub fn merge(&mut self, other: CycleReport) {
        self.executed += other.executed;
        self.traps += other.traps;
        self.completions += other.completions;
        self.faults += other.faults;
    }
}

/// A snapshot of the machine minus memory content: clock, every PE's
/// execution state, every DMA engine (including in-flight transfers) and
/// the access counters. Memory is checkpointed separately (base image +
/// dirty-page deltas) by the replay engine.
#[derive(Debug, Clone)]
pub struct PlatformState {
    pub clock: u64,
    pub pes: Vec<PeState>,
    pub dma: Vec<DmaEngine>,
    pub mem_reads: u64,
    pub mem_writes: u64,
}

/// The simulated machine.
#[derive(Debug, Clone)]
pub struct Platform {
    pub config: PlatformConfig,
    pub infos: Vec<PeInfo>,
    pub pes: Vec<PeState>,
    pub mem: Memory,
    pub dma: Vec<DmaEngine>,
    pub program: Program,
    pub clock: u64,
}

impl Platform {
    pub fn new(config: PlatformConfig) -> Self {
        let mut infos = Vec::new();
        for c in 0..config.clusters {
            for p in 0..config.pes_per_cluster {
                infos.push(PeInfo {
                    id: PeId(infos.len() as u16),
                    class: PeClass::Stxp70,
                    cluster: c,
                    name: format!("cluster{c}.pe{p}"),
                });
            }
            for a in 0..config.accels_per_cluster {
                infos.push(PeInfo {
                    id: PeId(infos.len() as u16),
                    class: PeClass::HwAccel,
                    cluster: c,
                    name: format!("cluster{c}.hwpe{a}"),
                });
            }
        }
        infos.push(PeInfo {
            id: PeId(infos.len() as u16),
            class: PeClass::ArmHost,
            cluster: u16::MAX,
            name: "host".to_string(),
        });
        // One DMA controller per cluster plus the host's.
        let dma = (0..=config.clusters)
            .map(|_| DmaEngine::new(config.dma_words_per_cycle))
            .collect();
        let pes = infos.iter().map(|_| PeState::default()).collect();
        Platform {
            mem: Memory::new(config.mem.clone()),
            pes,
            infos,
            dma,
            program: Program::default(),
            clock: 0,
            config,
        }
    }

    /// Install the linked program image.
    pub fn load(&mut self, program: Program) {
        self.program = program;
    }

    pub fn pe_count(&self) -> usize {
        self.pes.len()
    }

    pub fn host_id(&self) -> PeId {
        PeId(self.infos.len() as u16 - 1)
    }

    /// The `idx`-th general-purpose PE of `cluster`.
    pub fn pe_on(&self, cluster: u16, idx: u16) -> Option<PeId> {
        self.infos
            .iter()
            .filter(|i| i.cluster == cluster && i.class == PeClass::Stxp70)
            .nth(idx as usize)
            .map(|i| i.id)
    }

    /// The `idx`-th hardware accelerator of `cluster`.
    pub fn accel_on(&self, cluster: u16, idx: u16) -> Option<PeId> {
        self.infos
            .iter()
            .filter(|i| i.cluster == cluster && i.class == PeClass::HwAccel)
            .nth(idx as usize)
            .map(|i| i.id)
    }

    pub fn info(&self, pe: PeId) -> &PeInfo {
        &self.infos[pe.index()]
    }

    /// Start a task on an idle PE from outside a trap (initial boot).
    pub fn invoke(&mut self, pe: PeId, addr: CodeAddr, args: &[Word]) {
        self.pes[pe.index()].invoke(addr, args);
    }

    /// Advance the whole machine by one cycle.
    pub fn step_cycle(&mut self, handler: &mut dyn TrapHandler) -> CycleReport {
        let mut report = CycleReport::default();

        handler.on_cycle(&mut TrapCtx {
            mem: &mut self.mem,
            dma: &mut self.dma,
            pes: &mut self.pes,
            clock: self.clock,
        });
        // DMA-completion ordering is a scheduler choice point: when two or
        // more engines are in flight, the handler elects which advances
        // first (rotation over the active set). The default answer keeps
        // the historical index order, and engines with nothing in flight
        // never observe the rotation (their step is a no-op).
        let active: Vec<usize> = (0..self.dma.len())
            .filter(|&i| self.dma[i].in_flight() > 0)
            .collect();
        if active.len() >= 2 {
            let r =
                handler.choose_dma_order(active.len() as u32, self.clock) as usize % active.len();
            for k in 0..active.len() {
                let i = active[(k + r) % active.len()];
                self.dma[i].step(&mut self.mem);
            }
        } else if let Some(&i) = active.first() {
            self.dma[i].step(&mut self.mem);
        }

        for i in 0..self.pes.len() {
            let mut pe = std::mem::take(&mut self.pes[i]);
            let id = PeId(i as u16);
            match pe.status {
                PeStatus::Blocked(_) => {
                    if let Some((tid, argc, retc)) = pe.pending_trap(&self.program) {
                        report.traps += 1;
                        self.dispatch_trap(handler, id, &mut pe, tid, argc, retc);
                    } else {
                        // Blocked without a pending trap cannot happen for
                        // well-formed runtimes; fault loudly instead of
                        // spinning forever.
                        pe.status =
                            PeStatus::Faulted(VmFault::Runtime("blocked without pending trap"));
                        report.faults += 1;
                    }
                }
                _ => match pe.step(&self.program, &mut self.mem) {
                    StepEvent::TrapPending {
                        id: tid,
                        argc,
                        retc,
                    } => {
                        report.traps += 1;
                        self.dispatch_trap(handler, id, &mut pe, tid, argc, retc);
                    }
                    StepEvent::TaskComplete => {
                        report.completions += 1;
                        handler.on_task_complete(
                            &mut TrapCtx {
                                mem: &mut self.mem,
                                dma: &mut self.dma,
                                pes: &mut self.pes,
                                clock: self.clock,
                            },
                            id,
                            &mut pe,
                        );
                    }
                    StepEvent::Executed | StepEvent::Called { .. } | StepEvent::Returned { .. } => {
                        report.executed += 1
                    }
                    StepEvent::Fault(_) => report.faults += 1,
                    StepEvent::Stalled | StepEvent::Idle | StepEvent::Halted => {}
                },
            }
            self.pes[i] = pe;
        }
        self.clock += 1;
        report
    }

    fn dispatch_trap(
        &mut self,
        handler: &mut dyn TrapHandler,
        id: PeId,
        pe: &mut PeState,
        trap_id: u16,
        argc: u8,
        retc: u8,
    ) {
        debug_assert!(argc as usize <= 8, "trap arity limited to 8");
        let mut buf = [0 as Word; 8];
        let args = pe.trap_args(argc);
        buf[..args.len()].copy_from_slice(args);
        let result = handler.trap(
            &mut TrapCtx {
                mem: &mut self.mem,
                dma: &mut self.dma,
                pes: &mut self.pes,
                clock: self.clock,
            },
            id,
            pe,
            trap_id,
            &buf[..argc as usize],
        );
        match result {
            TrapResult::Done => {
                debug_assert_eq!(retc, 0, "trap {trap_id} must return a value");
                pe.complete_trap(argc, &[]);
            }
            TrapResult::Done1(w) => {
                debug_assert_eq!(retc, 1, "trap {trap_id} returns no value");
                pe.complete_trap(argc, &[w]);
            }
            TrapResult::Block(reason) => pe.block(reason),
            TrapResult::Fault(msg) => {
                pe.status = PeStatus::Faulted(VmFault::Runtime(msg));
            }
        }
    }

    /// Run for `cycles` cycles (fast path, no per-cycle inspection).
    pub fn run(&mut self, handler: &mut dyn TrapHandler, cycles: u64) -> CycleReport {
        let mut total = CycleReport::default();
        for _ in 0..cycles {
            total.merge(self.step_cycle(handler));
        }
        total
    }

    /// True when nothing can make progress any more: every PE idle, halted
    /// or faulted, and no DMA in flight. Blocked PEs mean a deadlock or a
    /// starved source, *not* quiescence.
    pub fn is_quiescent(&self) -> bool {
        self.pes.iter().all(|p| {
            matches!(
                p.status,
                PeStatus::Idle | PeStatus::Halted | PeStatus::Faulted(_)
            )
        }) && self.dma.iter().all(|d| d.in_flight() == 0)
    }

    /// All PEs blocked (or idle/halted) with at least one blocked: the
    /// machine can only be unstuck by external action — a deadlock from the
    /// application's point of view. The debugger's token-injection commands
    /// exist precisely to untie this state (§III).
    pub fn is_deadlocked(&self) -> bool {
        let mut any_blocked = false;
        for p in &self.pes {
            match p.status {
                PeStatus::Running => return false,
                PeStatus::Blocked(_) => any_blocked = true,
                _ => {}
            }
        }
        any_blocked && self.dma.iter().all(|d| d.in_flight() == 0)
    }

    /// Copy-on-write fork of the whole machine: PE/DMA/clock state is
    /// cloned outright (it is small), memory forks page-wise via
    /// [`Memory::fork`] so the two machines share every untouched page.
    pub fn fork(&mut self) -> Platform {
        let mem = self.mem.fork();
        Platform {
            config: self.config.clone(),
            infos: self.infos.clone(),
            pes: self.pes.clone(),
            mem,
            dma: self.dma.clone(),
            program: self.program.clone(),
            clock: self.clock,
        }
    }

    /// Capture everything about the machine except memory content, which
    /// the replay engine tracks separately via dirty pages.
    pub fn capture_state(&self) -> PlatformState {
        PlatformState {
            clock: self.clock,
            pes: self.pes.clone(),
            dma: self.dma.clone(),
            mem_reads: self.mem.reads,
            mem_writes: self.mem.writes,
        }
    }

    /// Restore a previously captured machine state (memory content is
    /// restored separately). Pending watch hits belong to the abandoned
    /// timeline and are dropped.
    pub fn restore_state(&mut self, s: &PlatformState) {
        self.clock = s.clock;
        self.pes.clone_from(&s.pes);
        self.dma.clone_from(&s.dma);
        self.mem.reads = s.mem_reads;
        self.mem.writes = s.mem_writes;
        let _ = self.mem.take_hits();
    }

    /// Feed the full machine state (sans memory content) to a hasher.
    pub fn hash_state(&self, h: &mut dyn std::hash::Hasher) {
        h.write_u64(self.clock);
        h.write_u64(self.mem.reads);
        h.write_u64(self.mem.writes);
        for pe in &self.pes {
            pe.hash_state(h);
        }
        for d in &self.dma {
            d.hash_state(h);
        }
    }

    /// Human-readable topology description (the `platform_tour` example and
    /// the `info platform` debugger command).
    pub fn describe(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Platform 2012 functional model: {} cluster(s), {} PE(s) total\n",
            self.config.clusters,
            self.pes.len()
        ));
        for c in 0..self.config.clusters {
            out.push_str(&format!(
                "  cluster {c}: {} x STxP70 + {} x HWPE, L1 @0x{:08x} ({} words, {} cy)\n",
                self.config.pes_per_cluster,
                self.config.accels_per_cluster,
                self.config.mem.l1_base(c),
                self.config.mem.l1_words,
                self.config.mem.l1_latency,
            ));
        }
        out.push_str(&format!(
            "  L2 @0x{:08x} ({} words, {} cy) — inter-cluster\n",
            crate::memory::L2_BASE,
            self.config.mem.l2_words,
            self.config.mem.l2_latency,
        ));
        out.push_str(&format!(
            "  L3 @0x{:08x} ({} words, {} cy) — host side, via DMA ({} engines, {} words/cy)\n",
            crate::memory::L3_BASE,
            self.config.mem.l3_words,
            self.config.mem.l3_latency,
            self.dma.len(),
            self.config.dma_words_per_cycle,
        ));
        out.push_str(&format!("  host: {}\n", self.info(self.host_id()).name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Insn, ProgramBuilder};
    use crate::memory::L2_BASE;
    use crate::trap::NullHandler;
    use crate::vm::BlockReason;

    #[test]
    fn topology_matches_config() {
        let p = Platform::new(PlatformConfig::default());
        // 2 clusters x (4 + 1) + host
        assert_eq!(p.pe_count(), 11);
        assert_eq!(p.info(p.host_id()).class, PeClass::ArmHost);
        assert_eq!(p.pe_on(1, 0), Some(PeId(5)));
        assert_eq!(p.accel_on(0, 0), Some(PeId(4)));
        assert_eq!(p.pe_on(2, 0), None);
        assert_eq!(p.dma.len(), 3);
        let d = p.describe();
        assert!(d.contains("cluster 1"));
        assert!(d.contains("host"));
    }

    #[test]
    fn two_pes_interleave_deterministically() {
        // Both PEs increment their own counter in L2; after N cycles both
        // have retired the same instruction count.
        let mut b = ProgramBuilder::new();
        let entry = b.begin_func(1);
        b.emit(Insn::Enter(1));
        let top = b.here();
        b.emit(Insn::LoadLocal(0));
        b.emit(Insn::LoadLocal(0));
        b.emit(Insn::LoadMem);
        b.emit(Insn::Const(1));
        b.emit(Insn::Add);
        b.emit(Insn::StoreMem);
        b.emit(Insn::Jump(top));
        let prog = b.finish();

        let mut p = Platform::new(PlatformConfig::default());
        p.load(prog);
        p.invoke(PeId(0), entry, &[L2_BASE]);
        p.invoke(PeId(1), entry, &[L2_BASE + 1]);
        let mut h = NullHandler;
        p.run(&mut h, 1000);
        let a = p.mem.peek(L2_BASE).unwrap();
        let c = p.mem.peek(L2_BASE + 1).unwrap();
        assert_eq!(a, c, "fixed-order scheduling must be fair here");
        assert!(a > 0);
        assert_eq!(p.clock, 1000);
    }

    struct CountingHandler {
        served: u32,
        block_first: bool,
    }

    impl TrapHandler for CountingHandler {
        fn trap(
            &mut self,
            _ctx: &mut TrapCtx<'_>,
            _pe: PeId,
            _current: &mut PeState,
            id: u16,
            args: &[Word],
        ) -> TrapResult {
            assert_eq!(id, 42);
            assert_eq!(args, &[5]);
            if self.block_first {
                self.block_first = false;
                return TrapResult::Block(BlockReason::Other("test"));
            }
            self.served += 1;
            TrapResult::Done1(args[0] * 2)
        }
    }

    #[test]
    fn blocked_trap_is_retried_until_served() {
        let mut b = ProgramBuilder::new();
        let entry = b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Const(L2_BASE));
        b.emit(Insn::Const(5));
        b.emit(Insn::Trap {
            id: 42,
            argc: 1,
            retc: 1,
        });
        b.emit(Insn::StoreMem);
        b.emit(Insn::Halt);
        let prog = b.finish();

        let mut p = Platform::new(PlatformConfig::default());
        p.load(prog);
        p.invoke(PeId(0), entry, &[]);
        let mut h = CountingHandler {
            served: 0,
            block_first: true,
        };
        p.run(&mut h, 20);
        assert_eq!(h.served, 1);
        assert_eq!(p.mem.peek(L2_BASE).unwrap(), 10);
        assert!(matches!(p.pes[0].status, PeStatus::Halted));
    }

    #[test]
    fn quiescence_and_deadlock_detection() {
        let mut p = Platform::new(PlatformConfig::default());
        assert!(p.is_quiescent());
        assert!(!p.is_deadlocked());
        p.pes[0].status = PeStatus::Blocked(BlockReason::TokenWait { link: 1 });
        assert!(!p.is_quiescent());
        assert!(p.is_deadlocked());
        p.pes[1].status = PeStatus::Running;
        assert!(!p.is_deadlocked());
    }

    #[test]
    fn task_completion_reaches_handler() {
        struct H {
            done: u32,
        }
        impl TrapHandler for H {
            fn trap(
                &mut self,
                _c: &mut TrapCtx<'_>,
                _p: PeId,
                _cur: &mut PeState,
                _id: u16,
                _a: &[Word],
            ) -> TrapResult {
                TrapResult::Fault("unexpected")
            }
            fn on_task_complete(&mut self, _c: &mut TrapCtx<'_>, pe: PeId, _cur: &mut PeState) {
                assert_eq!(pe, PeId(2));
                self.done += 1;
            }
        }
        let mut b = ProgramBuilder::new();
        let entry = b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Ret { retc: 0 });
        let prog = b.finish();
        let mut p = Platform::new(PlatformConfig::default());
        p.load(prog);
        p.invoke(PeId(2), entry, &[]);
        let mut h = H { done: 0 };
        p.run(&mut h, 5);
        assert_eq!(h.done, 1);
        assert!(p.is_quiescent());
    }
}
