//! The trap interface between programs and the runtime system.
//!
//! PEDF is a *software* framework: filter kernels call framework functions
//! (`pedf_push_token`, `pedf_actor_start`, …). In the simulator these
//! functions are bytecode stubs whose body is a single `Trap` instruction;
//! the platform forwards the trap to a [`TrapHandler`] — the `pedf` crate's
//! runtime — together with a [`TrapCtx`] granting access to the rest of the
//! machine.
//!
//! Keeping the runtime *outside* the platform mirrors the paper's layering
//! (Fig. 3): the debugger owns both the machine and the runtime, observes
//! the machine through breakpoints, and never needs the runtime's
//! cooperation (except in the `framework cooperation` ablation).

use debuginfo::Word;

use crate::dma::DmaEngine;
use crate::memory::Memory;
use crate::platform::PeId;
use crate::vm::{BlockReason, PeState};

/// Outcome of a trap, sized to avoid allocation on the token hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapResult {
    /// Commit; the trap produces no result (retc must be 0).
    Done,
    /// Commit with one result word (retc must be 1).
    Done1(Word),
    /// The condition is not satisfiable this cycle; park the PE. The same
    /// trap is re-presented every subsequent cycle until it completes.
    Block(BlockReason),
    /// The runtime detected a protocol violation (e.g. unknown trap id);
    /// the PE faults and the debugger reports it.
    Fault(&'static str),
}

/// Mutable view of the machine handed to the runtime during a trap.
///
/// `pes` contains **all** processing elements, but the slot of the PE
/// currently trapping holds a placeholder (its state travels separately as
/// the `current` argument of [`TrapHandler::trap`]); the runtime must not
/// schedule work onto the trapping PE.
pub struct TrapCtx<'a> {
    pub mem: &'a mut Memory,
    pub dma: &'a mut [DmaEngine],
    pub pes: &'a mut [PeState],
    pub clock: u64,
}

impl TrapCtx<'_> {
    /// Start task `addr` on an idle PE (the runtime scheduling a filter's
    /// WORK method after ACTOR_START).
    pub fn invoke(&mut self, pe: PeId, addr: debuginfo::CodeAddr, args: &[Word]) {
        self.pes[pe.index()].invoke(addr, args);
    }

    pub fn pe(&self, pe: PeId) -> &PeState {
        &self.pes[pe.index()]
    }

    pub fn pe_mut(&mut self, pe: PeId) -> &mut PeState {
        &mut self.pes[pe.index()]
    }
}

/// The runtime system's side of the trap interface.
pub trait TrapHandler {
    /// Service trap `id` raised by `pe` with operands `args`.
    fn trap(
        &mut self,
        ctx: &mut TrapCtx<'_>,
        pe: PeId,
        current: &mut PeState,
        id: u16,
        args: &[Word],
    ) -> TrapResult;

    /// A task started with [`TrapCtx::invoke`] (or
    /// [`crate::Platform::invoke`]) ran to completion on `pe`.
    fn on_task_complete(&mut self, ctx: &mut TrapCtx<'_>, pe: PeId, current: &mut PeState) {
        let _ = (ctx, pe, current);
    }

    /// Called once per cycle before any PE is stepped; the runtime uses it
    /// for housekeeping such as feeding environment sources.
    fn on_cycle(&mut self, ctx: &mut TrapCtx<'_>) {
        let _ = ctx;
    }

    /// Elect the order in which the `n_active` concurrently in-flight DMA
    /// engines advance this cycle: the return value rotates the engine
    /// list (`r % n_active`). Only called when two or more engines have
    /// transfers in flight — a genuine nondeterministic choice point on
    /// real hardware that the deterministic simulator must pick *some*
    /// answer for. The default (0) keeps the historical index order.
    fn choose_dma_order(&mut self, n_active: u32, clock: u64) -> u32 {
        let _ = (n_active, clock);
        0
    }
}

/// A handler that faults on every trap — used by platform-only tests and as
/// the default when running bare programs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullHandler;

impl TrapHandler for NullHandler {
    fn trap(
        &mut self,
        _ctx: &mut TrapCtx<'_>,
        _pe: PeId,
        _current: &mut PeState,
        _id: u16,
        _args: &[Word],
    ) -> TrapResult {
        TrapResult::Fault("no runtime installed")
    }
}
