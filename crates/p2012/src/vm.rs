//! The per-PE execution engine.
//!
//! Each processing element interprets the shared [`Program`] image with its
//! own program counter, call-frame stack and status. The interpreter is
//! deliberately transparent: every piece of state a source-level debugger
//! wants (pc, frames, locals, operand stack, block reason) is a plain public
//! field, because in this reproduction the debugger *is* the host process.
//!
//! Traps are two-phase: [`PeState::step`] reports a pending trap without
//! consuming its operands, the platform consults the runtime handler, and
//! either [`PeState::complete_trap`] commits the instruction or
//! [`PeState::block`] parks the PE. A blocked PE re-presents the same trap
//! every cycle until the handler lets it through — this is how token-starved
//! filters wait "for more data", the state §III requires the debugger to be
//! able to display per actor.

use debuginfo::{CodeAddr, Word};

use crate::isa::{Insn, Program};
use crate::memory::{MemError, Memory};

/// Maximum call-frame depth per PE. A `Call` that would exceed this faults
/// with [`VmFault::CallDepthExceeded`]; the static verifier (`bcv`) bounds
/// worst-case depth against the same constant (BCV205).
pub const MAX_CALL_DEPTH: usize = 64;

/// Nominal per-frame operand-stack budget. The interpreter itself grows
/// stacks on demand; the static verifier flags functions whose worst-case
/// operand depth exceeds this bound (BCV202).
pub const MAX_OPERAND_STACK: usize = 256;

/// Why a PE is blocked inside the runtime. Worded from the dataflow
/// perspective because the debugger surfaces these verbatim
/// (`state: blocked, waiting for input tokens on <link>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Waiting for input tokens on a data link.
    TokenWait { link: u32 },
    /// Waiting for free space on a data link (link full).
    SpaceWait { link: u32 },
    /// Controller waiting for scheduled filters to start (WAIT_FOR_ACTOR_INIT).
    InitWait,
    /// Controller waiting for scheduled filters to finish (WAIT_FOR_ACTOR_SYNC).
    SyncWait,
    /// Waiting for a DMA transfer to complete.
    DmaWait { channel: u32 },
    /// Runtime-defined condition.
    Other(&'static str),
}

impl std::fmt::Display for BlockReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockReason::TokenWait { link } => {
                write!(f, "waiting for input tokens (link #{link})")
            }
            BlockReason::SpaceWait { link } => {
                write!(f, "waiting for link space (link #{link})")
            }
            BlockReason::InitWait => write!(f, "WAIT_FOR_ACTOR_INIT"),
            BlockReason::SyncWait => write!(f, "WAIT_FOR_ACTOR_SYNC"),
            BlockReason::DmaWait { channel } => {
                write!(f, "waiting for DMA channel {channel}")
            }
            BlockReason::Other(s) => f.write_str(s),
        }
    }
}

/// Fatal execution error; the PE stops and the debugger reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmFault {
    DivideByZero,
    StackUnderflow,
    BadPc {
        pc: CodeAddr,
    },
    LocalOutOfRange {
        slot: u32,
    },
    Mem(MemError),
    /// `Enter` executed anywhere but as a function's first instruction, or
    /// a call into an address with no `Enter`.
    MalformedFunction {
        pc: CodeAddr,
    },
    /// A `Call` would push past [`MAX_CALL_DEPTH`] frames.
    CallDepthExceeded,
    /// The runtime system rejected a trap (protocol violation).
    Runtime(&'static str),
}

impl std::fmt::Display for VmFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmFault::DivideByZero => write!(f, "integer divide by zero"),
            VmFault::StackUnderflow => write!(f, "operand stack underflow"),
            VmFault::BadPc { pc } => write!(f, "pc 0x{pc:04x} out of image"),
            VmFault::LocalOutOfRange { slot } => {
                write!(f, "local slot {slot} out of range")
            }
            VmFault::Mem(e) => write!(f, "memory fault: {e}"),
            VmFault::MalformedFunction { pc } => {
                write!(f, "malformed function at 0x{pc:04x}")
            }
            VmFault::CallDepthExceeded => {
                write!(f, "call depth exceeds {MAX_CALL_DEPTH} frames")
            }
            VmFault::Runtime(msg) => write!(f, "runtime fault: {msg}"),
        }
    }
}

/// One call frame.
#[derive(Debug, Clone, Default)]
pub struct Frame {
    /// Entry address of the function this frame executes (for backtraces).
    pub func: CodeAddr,
    /// Where `Ret` resumes in the caller.
    pub ret_addr: CodeAddr,
    pub locals: Vec<Word>,
    pub stack: Vec<Word>,
}

/// Scheduling status of a PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PeStatus {
    /// No task assigned (a filter between steps).
    #[default]
    Idle,
    Running,
    Blocked(BlockReason),
    Halted,
    Faulted(VmFault),
}

/// What happened during one [`PeState::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// An ordinary instruction retired.
    Executed,
    /// The PE is paying a memory-latency stall this cycle.
    Stalled,
    /// Nothing to run.
    Idle,
    /// A call frame was pushed (function entry).
    Called {
        from: CodeAddr,
        to: CodeAddr,
    },
    /// A frame was popped; execution resumed at `to` in the caller.
    Returned {
        to: CodeAddr,
    },
    /// The outermost frame returned; the PE is Idle again and the runtime
    /// should be told the task finished.
    TaskComplete,
    /// A `Trap` instruction is pending; operands are still on the stack.
    TrapPending {
        id: u16,
        argc: u8,
        retc: u8,
    },
    Halted,
    Fault(VmFault),
}

/// Execution state of one processing element.
#[derive(Debug, Clone, Default)]
pub struct PeState {
    pub pc: CodeAddr,
    pub frames: Vec<Frame>,
    pub status: PeStatus,
    /// Remaining memory-stall cycles.
    pub stall: u32,
    /// Instructions retired (simulator-throughput benchmark).
    pub retired: u64,
    /// Top-level task invocations (runtime work scheduling). The debugger
    /// uses the delta of this counter as its work-entry "breakpoint": a
    /// free-running filter is re-invoked within a single cycle and never
    /// observably idles, so a level-triggered check would miss entries.
    pub invocations: u64,
}

impl PeState {
    /// Start executing `addr` with `args`. The PE must be idle.
    ///
    /// # Panics
    /// Panics when invoked on a non-idle PE: the runtime scheduling layer
    /// must never double-book a processing element.
    pub fn invoke(&mut self, addr: CodeAddr, args: &[Word]) {
        assert!(
            matches!(self.status, PeStatus::Idle),
            "invoke on non-idle PE (status {:?})",
            self.status
        );
        self.frames.push(Frame {
            func: addr,
            // Top-level frames have nowhere to return; `Ret` from depth 1
            // yields TaskComplete instead of using this.
            ret_addr: 0,
            locals: args.to_vec(),
            stack: Vec::new(),
        });
        self.pc = addr;
        self.status = PeStatus::Running;
        self.invocations += 1;
    }

    pub fn frame_depth(&self) -> usize {
        self.frames.len()
    }

    /// Feed every observable piece of PE state to a hasher. Used by the
    /// replay engine's divergence check: two executions with equal hashes
    /// at every checkpoint boundary are byte-identical machines.
    pub fn hash_state(&self, h: &mut dyn std::hash::Hasher) {
        h.write_u32(self.pc);
        // Status carries enums with payloads; its Debug form is a stable,
        // collision-safe encoding without hand-maintaining a discriminant.
        h.write(format!("{:?}", self.status).as_bytes());
        h.write_u32(self.stall);
        h.write_u64(self.retired);
        h.write_u64(self.invocations);
        h.write_usize(self.frames.len());
        for f in &self.frames {
            h.write_u32(f.func);
            h.write_u32(f.ret_addr);
            h.write_usize(f.locals.len());
            for w in &f.locals {
                h.write_u32(*w);
            }
            h.write_usize(f.stack.len());
            for w in &f.stack {
                h.write_u32(*w);
            }
        }
    }

    pub fn top_frame(&self) -> Option<&Frame> {
        self.frames.last()
    }

    /// Arguments visible to a pending trap: the top `argc` operands.
    pub fn trap_args(&self, argc: u8) -> &[Word] {
        let stack = &self.frames.last().expect("trap without frame").stack;
        &stack[stack.len() - argc as usize..]
    }

    /// Commit a pending trap: pop its operands, push `results`, advance.
    pub fn complete_trap(&mut self, argc: u8, results: &[Word]) {
        let frame = self.frames.last_mut().expect("trap without frame");
        let keep = frame.stack.len() - argc as usize;
        frame.stack.truncate(keep);
        frame.stack.extend_from_slice(results);
        self.pc += 1;
        self.status = PeStatus::Running;
    }

    /// Park the PE on a blocking condition; the trap stays pending.
    pub fn block(&mut self, reason: BlockReason) {
        self.status = PeStatus::Blocked(reason);
    }

    /// The pending trap of a blocked PE, if any.
    pub fn pending_trap(&self, prog: &Program) -> Option<(u16, u8, u8)> {
        match prog.fetch(self.pc) {
            Some(Insn::Trap { id, argc, retc }) => Some((id, argc, retc)),
            _ => None,
        }
    }

    fn fault(&mut self, f: VmFault) -> StepEvent {
        self.status = PeStatus::Faulted(f);
        StepEvent::Fault(f)
    }

    fn pop(frame: &mut Frame) -> Result<Word, VmFault> {
        frame.stack.pop().ok_or(VmFault::StackUnderflow)
    }

    /// Execute at most one instruction.
    pub fn step(&mut self, prog: &Program, mem: &mut Memory) -> StepEvent {
        match self.status {
            PeStatus::Running => {}
            PeStatus::Idle => return StepEvent::Idle,
            PeStatus::Blocked(_) => {
                // The platform retries the pending trap; step() itself has
                // nothing to do for a blocked PE.
                return StepEvent::Stalled;
            }
            PeStatus::Halted => return StepEvent::Halted,
            PeStatus::Faulted(f) => return StepEvent::Fault(f),
        }
        if self.stall > 0 {
            self.stall -= 1;
            return StepEvent::Stalled;
        }
        let insn = match prog.fetch(self.pc) {
            Some(i) => i,
            None => return self.fault(VmFault::BadPc { pc: self.pc }),
        };

        macro_rules! frame {
            () => {
                match self.frames.last_mut() {
                    Some(f) => f,
                    None => return self.fault(VmFault::StackUnderflow),
                }
            };
        }
        macro_rules! binop {
            (|$a:ident, $b:ident| $e:expr) => {{
                let f = frame!();
                let $b = match Self::pop(f) {
                    Ok(v) => v,
                    Err(e) => return self.fault(e),
                };
                let $a = match Self::pop(f) {
                    Ok(v) => v,
                    Err(e) => return self.fault(e),
                };
                let r: Word = $e;
                f.stack.push(r);
            }};
        }
        macro_rules! unop {
            (|$a:ident| $e:expr) => {{
                let f = frame!();
                let $a = match Self::pop(f) {
                    Ok(v) => v,
                    Err(e) => return self.fault(e),
                };
                let r: Word = $e;
                f.stack.push(r);
            }};
        }

        self.retired += 1;
        match insn {
            Insn::Enter(n) => {
                let f = frame!();
                if f.locals.len() > n as usize {
                    return self.fault(VmFault::MalformedFunction { pc: self.pc });
                }
                f.locals.resize(n as usize, 0);
            }
            Insn::Const(w) => frame!().stack.push(w),
            Insn::LoadLocal(n) => {
                let f = frame!();
                match f.locals.get(n as usize) {
                    Some(v) => {
                        let v = *v;
                        f.stack.push(v)
                    }
                    None => return self.fault(VmFault::LocalOutOfRange { slot: n.into() }),
                }
            }
            Insn::StoreLocal(n) => {
                let f = frame!();
                let v = match Self::pop(f) {
                    Ok(v) => v,
                    Err(e) => return self.fault(e),
                };
                match f.locals.get_mut(n as usize) {
                    Some(slot) => *slot = v,
                    None => return self.fault(VmFault::LocalOutOfRange { slot: n.into() }),
                }
            }
            Insn::LoadLocalIdx(base) => {
                let f = frame!();
                let off = match Self::pop(f) {
                    Ok(v) => v,
                    Err(e) => return self.fault(e),
                };
                let slot = base as u32 + off;
                match f.locals.get(slot as usize) {
                    Some(v) => {
                        let v = *v;
                        f.stack.push(v)
                    }
                    None => return self.fault(VmFault::LocalOutOfRange { slot }),
                }
            }
            Insn::StoreLocalIdx(base) => {
                let f = frame!();
                let v = match Self::pop(f) {
                    Ok(v) => v,
                    Err(e) => return self.fault(e),
                };
                let off = match Self::pop(f) {
                    Ok(v) => v,
                    Err(e) => return self.fault(e),
                };
                let slot = base as u32 + off;
                match f.locals.get_mut(slot as usize) {
                    Some(s) => *s = v,
                    None => return self.fault(VmFault::LocalOutOfRange { slot }),
                }
            }
            Insn::Dup => {
                let f = frame!();
                match f.stack.last().copied() {
                    Some(v) => f.stack.push(v),
                    None => return self.fault(VmFault::StackUnderflow),
                }
            }
            Insn::Drop => {
                let f = frame!();
                if Self::pop(f).is_err() {
                    return self.fault(VmFault::StackUnderflow);
                }
            }
            Insn::Swap => {
                let f = frame!();
                let n = f.stack.len();
                if n < 2 {
                    return self.fault(VmFault::StackUnderflow);
                }
                f.stack.swap(n - 1, n - 2);
            }

            Insn::Add => binop!(|a, b| a.wrapping_add(b)),
            Insn::Sub => binop!(|a, b| a.wrapping_sub(b)),
            Insn::Mul => binop!(|a, b| a.wrapping_mul(b)),
            Insn::Div => {
                let f = frame!();
                let b = match Self::pop(f) {
                    Ok(v) => v,
                    Err(e) => return self.fault(e),
                };
                let a = match Self::pop(f) {
                    Ok(v) => v,
                    Err(e) => return self.fault(e),
                };
                if b == 0 {
                    return self.fault(VmFault::DivideByZero);
                }
                f.stack.push((a as i32).wrapping_div(b as i32) as Word);
            }
            Insn::Rem => {
                let f = frame!();
                let b = match Self::pop(f) {
                    Ok(v) => v,
                    Err(e) => return self.fault(e),
                };
                let a = match Self::pop(f) {
                    Ok(v) => v,
                    Err(e) => return self.fault(e),
                };
                if b == 0 {
                    return self.fault(VmFault::DivideByZero);
                }
                f.stack.push((a as i32).wrapping_rem(b as i32) as Word);
            }
            Insn::BitAnd => binop!(|a, b| a & b),
            Insn::BitOr => binop!(|a, b| a | b),
            Insn::BitXor => binop!(|a, b| a ^ b),
            Insn::Shl => binop!(|a, b| a.wrapping_shl(b)),
            Insn::Shr => binop!(|a, b| a.wrapping_shr(b)),
            Insn::Sar => binop!(|a, b| ((a as i32).wrapping_shr(b)) as Word),
            Insn::Neg => unop!(|a| (a as i32).wrapping_neg() as Word),
            Insn::Not => unop!(|a| (a == 0) as Word),
            Insn::BitNot => unop!(|a| !a),

            Insn::Eq => binop!(|a, b| (a == b) as Word),
            Insn::Ne => binop!(|a, b| (a != b) as Word),
            Insn::LtS => binop!(|a, b| ((a as i32) < (b as i32)) as Word),
            Insn::LeS => binop!(|a, b| ((a as i32) <= (b as i32)) as Word),
            Insn::GtS => binop!(|a, b| ((a as i32) > (b as i32)) as Word),
            Insn::GeS => binop!(|a, b| ((a as i32) >= (b as i32)) as Word),
            Insn::LtU => binop!(|a, b| (a < b) as Word),
            Insn::GeU => binop!(|a, b| (a >= b) as Word),

            Insn::Jump(t) => {
                self.pc = t;
                return StepEvent::Executed;
            }
            Insn::JumpIfZero(t) => {
                let f = frame!();
                let v = match Self::pop(f) {
                    Ok(v) => v,
                    Err(e) => return self.fault(e),
                };
                if v == 0 {
                    self.pc = t;
                    return StepEvent::Executed;
                }
            }
            Insn::JumpIfNot(t) => {
                let f = frame!();
                let v = match Self::pop(f) {
                    Ok(v) => v,
                    Err(e) => return self.fault(e),
                };
                if v != 0 {
                    self.pc = t;
                    return StepEvent::Executed;
                }
            }
            Insn::Call { addr, argc } => {
                if self.frames.len() >= MAX_CALL_DEPTH {
                    return self.fault(VmFault::CallDepthExceeded);
                }
                let from = self.pc;
                let f = frame!();
                let n = f.stack.len();
                if n < argc as usize {
                    return self.fault(VmFault::StackUnderflow);
                }
                let args = f.stack.split_off(n - argc as usize);
                self.frames.push(Frame {
                    func: addr,
                    ret_addr: from + 1,
                    locals: args,
                    stack: Vec::new(),
                });
                self.pc = addr;
                return StepEvent::Called { from, to: addr };
            }
            Insn::Ret { retc } => {
                let mut popped = match self.frames.pop() {
                    Some(f) => f,
                    None => return self.fault(VmFault::StackUnderflow),
                };
                let n = popped.stack.len();
                if n < retc as usize {
                    return self.fault(VmFault::StackUnderflow);
                }
                let results = popped.stack.split_off(n - retc as usize);
                match self.frames.last_mut() {
                    Some(caller) => {
                        caller.stack.extend_from_slice(&results);
                        self.pc = popped.ret_addr;
                        return StepEvent::Returned { to: self.pc };
                    }
                    None => {
                        self.status = PeStatus::Idle;
                        return StepEvent::TaskComplete;
                    }
                }
            }

            Insn::LoadMem => {
                let f = frame!();
                let addr = match Self::pop(f) {
                    Ok(v) => v,
                    Err(e) => return self.fault(e),
                };
                match mem.read(addr) {
                    Ok((v, lat)) => {
                        f.stack.push(v);
                        self.stall += lat.saturating_sub(1);
                    }
                    Err(e) => return self.fault(VmFault::Mem(e)),
                }
            }
            Insn::StoreMem => {
                let f = frame!();
                let v = match Self::pop(f) {
                    Ok(v) => v,
                    Err(e) => return self.fault(e),
                };
                let addr = match Self::pop(f) {
                    Ok(v) => v,
                    Err(e) => return self.fault(e),
                };
                match mem.write(addr, v) {
                    Ok(lat) => self.stall += lat.saturating_sub(1),
                    Err(e) => return self.fault(VmFault::Mem(e)),
                }
            }

            Insn::Trap { id, argc, retc } => {
                // Undo the retire count: the instruction has not committed.
                self.retired -= 1;
                let f = frame!();
                if f.stack.len() < argc as usize {
                    return self.fault(VmFault::StackUnderflow);
                }
                return StepEvent::TrapPending { id, argc, retc };
            }
            Insn::Halt => {
                self.status = PeStatus::Halted;
                return StepEvent::Halted;
            }
            Insn::Nop => {}
        }
        self.pc += 1;
        StepEvent::Executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::ProgramBuilder;
    use crate::memory::{Memory, MemoryMap, L2_BASE};

    fn run_to_completion(prog: &Program, entry: CodeAddr, args: &[Word]) -> (PeState, Memory) {
        let mut pe = PeState::default();
        let mut mem = Memory::new(MemoryMap::default());
        pe.invoke(entry, args);
        for _ in 0..10_000 {
            match pe.step(prog, &mut mem) {
                StepEvent::TaskComplete | StepEvent::Halted | StepEvent::Fault(_) => break,
                _ => {}
            }
        }
        (pe, mem)
    }

    #[test]
    fn arithmetic_and_return_value() {
        // f(a, b) = (a + b) * 2
        let mut b = ProgramBuilder::new();
        let entry = b.begin_func(2);
        b.emit(Insn::Enter(2));
        b.emit(Insn::LoadLocal(0));
        b.emit(Insn::LoadLocal(1));
        b.emit(Insn::Add);
        b.emit(Insn::Const(2));
        b.emit(Insn::Mul);
        b.emit(Insn::Ret { retc: 1 });
        let prog = b.finish();

        // Wrap in a caller that stores to memory so we can observe it.
        let mut b2 = ProgramBuilder::new();
        let mut insns = prog.insns.clone();
        let main = insns.len() as CodeAddr;
        for i in insns.drain(..) {
            b2.emit(i);
        }
        b2.begin_func(0);
        b2.emit(Insn::Enter(0));
        b2.emit(Insn::Const(L2_BASE));
        b2.emit(Insn::Const(3));
        b2.emit(Insn::Const(4));
        b2.emit(Insn::Call {
            addr: entry,
            argc: 2,
        });
        b2.emit(Insn::StoreMem);
        b2.emit(Insn::Ret { retc: 0 });
        let prog = b2.finish();

        let (pe, mem) = run_to_completion(&prog, main, &[]);
        assert_eq!(pe.status, PeStatus::Idle);
        assert_eq!(mem.peek(L2_BASE).unwrap(), 14);
    }

    #[test]
    fn signed_comparison_and_branching() {
        // g(x) = x < 0 ? 1 : 2  (signed)
        let mut b = ProgramBuilder::new();
        let entry = b.begin_func(1);
        b.emit(Insn::Enter(1));
        let neg = b.new_label();
        b.emit(Insn::LoadLocal(0));
        b.emit(Insn::Const(0));
        b.emit(Insn::LtS);
        b.jump_if_not(neg);
        b.emit(Insn::Const(2));
        b.emit(Insn::Ret { retc: 1 });
        b.bind(neg);
        b.emit(Insn::Const(1));
        b.emit(Insn::Ret { retc: 1 });
        let prog = b.finish();

        let mut pe = PeState::default();
        let mut mem = Memory::new(MemoryMap::default());
        pe.invoke(entry, &[(-5i32) as Word]);
        loop {
            if let StepEvent::TaskComplete = pe.step(&prog, &mut mem) {
                break;
            }
        }
        // Result would have been pushed to the caller; at top level the
        // value is discarded with the frame, so re-run checking locals via
        // a store helper instead: simpler to verify with unsigned compare.
        pe = PeState::default();
        pe.invoke(entry, &[5]);
        loop {
            match pe.step(&prog, &mut mem) {
                StepEvent::TaskComplete => break,
                StepEvent::Fault(f) => panic!("fault: {f}"),
                _ => {}
            }
        }
    }

    #[test]
    fn fault_paths_are_reported() {
        // Stack underflow.
        let mut b = ProgramBuilder::new();
        let entry = b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Add);
        let prog = b.finish();
        let (pe, _) = run_to_completion(&prog, entry, &[]);
        assert_eq!(pe.status, PeStatus::Faulted(VmFault::StackUnderflow));

        // Bad pc (fall off the image).
        let mut b = ProgramBuilder::new();
        let entry = b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Nop);
        let prog = b.finish();
        let (pe, _) = run_to_completion(&prog, entry, &[]);
        assert!(matches!(
            pe.status,
            PeStatus::Faulted(VmFault::BadPc { .. })
        ));

        // Local slot out of range.
        let mut b = ProgramBuilder::new();
        let entry = b.begin_func(0);
        b.emit(Insn::Enter(1));
        b.emit(Insn::LoadLocal(7));
        let prog = b.finish();
        let (pe, _) = run_to_completion(&prog, entry, &[]);
        assert!(matches!(
            pe.status,
            PeStatus::Faulted(VmFault::LocalOutOfRange { slot: 7 })
        ));

        // Unmapped memory access.
        let mut b = ProgramBuilder::new();
        let entry = b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Const(0xdead_beef));
        b.emit(Insn::LoadMem);
        let prog = b.finish();
        let (pe, _) = run_to_completion(&prog, entry, &[]);
        assert!(matches!(pe.status, PeStatus::Faulted(VmFault::Mem(_))));

        // Every fault renders a human-readable message.
        for f in [
            VmFault::DivideByZero,
            VmFault::StackUnderflow,
            VmFault::BadPc { pc: 9 },
            VmFault::LocalOutOfRange { slot: 1 },
            VmFault::MalformedFunction { pc: 0 },
            VmFault::CallDepthExceeded,
            VmFault::Runtime("x"),
        ] {
            assert!(!f.to_string().is_empty());
        }
    }

    #[test]
    fn unbounded_recursion_faults_at_depth_limit() {
        // f() { f(); } — no base case: the VM must fault instead of
        // growing the frame stack forever.
        let mut b = ProgramBuilder::new();
        let entry = b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Call {
            addr: entry,
            argc: 0,
        });
        b.emit(Insn::Ret { retc: 0 });
        let prog = b.finish();
        let (pe, _) = run_to_completion(&prog, entry, &[]);
        assert_eq!(pe.status, PeStatus::Faulted(VmFault::CallDepthExceeded));
        assert_eq!(pe.frames.len(), MAX_CALL_DEPTH);
    }

    #[test]
    fn divide_by_zero_faults() {
        let mut b = ProgramBuilder::new();
        let entry = b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Const(1));
        b.emit(Insn::Const(0));
        b.emit(Insn::Div);
        b.emit(Insn::Halt);
        let prog = b.finish();
        let (pe, _) = run_to_completion(&prog, entry, &[]);
        assert_eq!(pe.status, PeStatus::Faulted(VmFault::DivideByZero));
    }

    #[test]
    fn memory_latency_stalls_the_pe() {
        let mut b = ProgramBuilder::new();
        let entry = b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Const(crate::memory::L3_BASE));
        b.emit(Insn::LoadMem);
        b.emit(Insn::Drop);
        b.emit(Insn::Halt);
        let prog = b.finish();
        let mut pe = PeState::default();
        let mut mem = Memory::new(MemoryMap::default());
        pe.invoke(entry, &[]);
        let mut stalls = 0;
        for _ in 0..200 {
            match pe.step(&prog, &mut mem) {
                StepEvent::Stalled => stalls += 1,
                StepEvent::Halted => break,
                _ => {}
            }
        }
        // L3 latency (32) minus the access cycle itself.
        assert_eq!(stalls, 31);
    }

    #[test]
    fn trap_is_two_phase_and_retryable() {
        let mut b = ProgramBuilder::new();
        let entry = b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Const(7));
        b.emit(Insn::Trap {
            id: 3,
            argc: 1,
            retc: 1,
        });
        b.emit(Insn::Halt);
        let prog = b.finish();

        let mut pe = PeState::default();
        let mut mem = Memory::new(MemoryMap::default());
        pe.invoke(entry, &[]);
        pe.step(&prog, &mut mem); // Enter
        pe.step(&prog, &mut mem); // Const
        let ev = pe.step(&prog, &mut mem);
        assert_eq!(
            ev,
            StepEvent::TrapPending {
                id: 3,
                argc: 1,
                retc: 1
            }
        );
        assert_eq!(pe.trap_args(1), &[7]);

        // Block: the trap stays pending at the same pc with operands intact.
        pe.block(BlockReason::TokenWait { link: 0 });
        assert_eq!(pe.pending_trap(&prog), Some((3, 1, 1)));
        assert_eq!(pe.trap_args(1), &[7]);

        // Complete: operands replaced by results, pc advances.
        pe.complete_trap(1, &[99]);
        assert_eq!(pe.top_frame().unwrap().stack, vec![99]);
        assert_eq!(pe.status, PeStatus::Running);
        assert_eq!(pe.step(&prog, &mut mem), StepEvent::Halted);
    }

    #[test]
    fn local_index_addressing() {
        // locals[1 + i] access via LoadLocalIdx/StoreLocalIdx
        let mut b = ProgramBuilder::new();
        let entry = b.begin_func(0);
        b.emit(Insn::Enter(4));
        // locals[1+2] = 42
        b.emit(Insn::Const(2));
        b.emit(Insn::Const(42));
        b.emit(Insn::StoreLocalIdx(1));
        // push locals[1+2]; store to memory
        b.emit(Insn::Const(L2_BASE));
        b.emit(Insn::Const(2));
        b.emit(Insn::LoadLocalIdx(1));
        b.emit(Insn::StoreMem);
        b.emit(Insn::Ret { retc: 0 });
        let prog = b.finish();
        let (pe, mem) = run_to_completion(&prog, entry, &[]);
        assert_eq!(pe.status, PeStatus::Idle);
        assert_eq!(mem.peek(L2_BASE).unwrap(), 42);
    }

    #[test]
    fn nested_calls_report_events() {
        let mut b = ProgramBuilder::new();
        let leaf = b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Ret { retc: 0 });
        let main = b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Call {
            addr: leaf,
            argc: 0,
        });
        b.emit(Insn::Ret { retc: 0 });
        let prog = b.finish();

        let mut pe = PeState::default();
        let mut mem = Memory::new(MemoryMap::default());
        pe.invoke(main, &[]);
        let mut events = Vec::new();
        loop {
            let e = pe.step(&prog, &mut mem);
            events.push(e);
            if matches!(e, StepEvent::TaskComplete | StepEvent::Fault(_)) {
                break;
            }
        }
        assert!(events.contains(&StepEvent::Called {
            from: main + 1,
            to: leaf
        }));
        assert!(events.contains(&StepEvent::Returned { to: main + 2 }));
        assert_eq!(*events.last().unwrap(), StepEvent::TaskComplete);
        assert_eq!(pe.frame_depth(), 0);
    }
}
