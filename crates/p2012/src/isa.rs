//! The STxP70-mini instruction set: a compact stack machine.
//!
//! The real STxP70 is a configurable VLIW core; its functional simulator
//! executes C semantics, not RTL. What the *debugger* needs from the machine
//! is: a program counter, call frames with named slots, deterministic
//! single-stepping and trap entry points. A stack machine delivers all of
//! that with a trivially verifiable interpreter, so that is the substitution
//! we make (documented in DESIGN.md).
//!
//! Programs are built with [`ProgramBuilder`], which handles forward-label
//! patching and records per-function frame sizes used by the VM prologue.

use debuginfo::{CodeAddr, Word};

/// One bytecode instruction.
///
/// Arithmetic/comparison instructions pop their operands (right-hand side
/// first) and push one result. Comparisons push `1` or `0`. Division and
/// remainder by zero raise [`crate::vm::VmFault::DivideByZero`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// Function prologue: grow the current frame's locals to `n` slots.
    /// Must be the first instruction of every function.
    Enter(u16),
    /// Push an immediate word.
    Const(Word),
    /// Push local slot `n`.
    LoadLocal(u16),
    /// Pop into local slot `n`.
    StoreLocal(u16),
    /// Pop a dynamic offset, push local slot `base + offset`. Used for
    /// struct-member and local-array access with computed indexes.
    LoadLocalIdx(u16),
    /// Pop a value then a dynamic offset, store into `base + offset`.
    StoreLocalIdx(u16),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Drop,
    /// Swap the two top stack slots.
    Swap,

    // Arithmetic (wrapping, 32-bit).
    Add,
    Sub,
    Mul,
    /// Signed division.
    Div,
    /// Signed remainder.
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    /// Arithmetic (sign-propagating) right shift.
    Sar,
    /// Two's-complement negate.
    Neg,
    /// Logical not: 0 -> 1, nonzero -> 0.
    Not,
    /// Bitwise complement.
    BitNot,

    // Comparisons. Signed variants interpret operands as i32.
    Eq,
    Ne,
    LtS,
    LeS,
    GtS,
    GeS,
    LtU,
    GeU,

    /// Unconditional jump.
    Jump(CodeAddr),
    /// Pop; jump when zero.
    JumpIfZero(CodeAddr),
    /// Pop; jump when nonzero.
    JumpIfNot(CodeAddr),
    /// Call `addr`, popping `argc` arguments into the callee's first locals
    /// (argument 0 in slot 0).
    Call {
        addr: CodeAddr,
        argc: u8,
    },
    /// Return, pushing `retc` (0 or 1) values from the callee stack onto the
    /// caller stack.
    Ret {
        retc: u8,
    },

    /// Pop a word address, push the loaded word (goes through the memory
    /// hierarchy; stalls the PE by the region's latency).
    LoadMem,
    /// Pop a value then a word address, store the value.
    StoreMem,

    /// Call into the runtime: `argc` operands are *peeked* (left on the
    /// stack) so a blocking trap can be retried; on completion the VM pops
    /// them and pushes `retc` results.
    Trap {
        id: u16,
        argc: u8,
        retc: u8,
    },

    /// Stop this PE permanently.
    Halt,
    Nop,
}

/// Metadata for one function in the image, used by the loader and debugger.
#[derive(Debug, Clone)]
pub struct FuncMeta {
    pub addr: CodeAddr,
    pub end: CodeAddr,
    pub argc: u8,
}

/// A linked program image: a flat instruction array shared by every PE
/// (the P2012 functional simulator links one binary containing application,
/// framework and runtime code).
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub insns: Vec<Insn>,
    pub funcs: Vec<FuncMeta>,
}

impl Program {
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    pub fn fetch(&self, pc: CodeAddr) -> Option<Insn> {
        self.insns.get(pc as usize).copied()
    }

    /// Function metadata covering `addr`, if any.
    pub fn func_at(&self, addr: CodeAddr) -> Option<&FuncMeta> {
        self.funcs.iter().find(|f| addr >= f.addr && addr < f.end)
    }
}

/// Unresolved jump target used during construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// Builder assembling a [`Program`] with forward labels.
///
/// The kernel compiler and the runtime-stub generator both target this
/// interface; `finish` verifies every label was bound, making unresolved
/// control flow a build-time panic instead of a runtime fault.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insns: Vec<Insn>,
    funcs: Vec<FuncMeta>,
    labels: Vec<Option<CodeAddr>>,
    patches: Vec<(usize, Label)>,
    current_func: Option<(CodeAddr, u8)>,
}

impl ProgramBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current emission address.
    pub fn here(&self) -> CodeAddr {
        self.insns.len() as CodeAddr
    }

    /// Begin a function; its extent closes at the next `begin_func` or at
    /// `finish`. Returns the entry address.
    pub fn begin_func(&mut self, argc: u8) -> CodeAddr {
        self.close_func();
        let addr = self.here();
        self.current_func = Some((addr, argc));
        addr
    }

    fn close_func(&mut self) {
        if let Some((addr, argc)) = self.current_func.take() {
            self.funcs.push(FuncMeta {
                addr,
                end: self.here(),
                argc,
            });
        }
    }

    pub fn emit(&mut self, i: Insn) -> CodeAddr {
        let at = self.here();
        self.insns.push(i);
        at
    }

    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() as u32 - 1)
    }

    /// Bind `label` to the current address.
    pub fn bind(&mut self, label: Label) {
        debug_assert!(self.labels[label.0 as usize].is_none(), "label bound twice");
        self.labels[label.0 as usize] = Some(self.here());
    }

    pub fn jump(&mut self, label: Label) {
        let at = self.emit(Insn::Jump(0));
        self.patches.push((at as usize, label));
    }

    pub fn jump_if_zero(&mut self, label: Label) {
        let at = self.emit(Insn::JumpIfZero(0));
        self.patches.push((at as usize, label));
    }

    pub fn jump_if_not(&mut self, label: Label) {
        let at = self.emit(Insn::JumpIfNot(0));
        self.patches.push((at as usize, label));
    }

    /// Rewrite the `Enter` placeholder at `at` once the function's final
    /// frame size is known (compilers discover locals while walking the
    /// body).
    ///
    /// # Panics
    /// Panics if the instruction at `at` is not an `Enter`.
    pub fn patch_enter(&mut self, at: CodeAddr, locals: u16) {
        match &mut self.insns[at as usize] {
            Insn::Enter(n) => *n = locals,
            other => panic!("patch_enter target is {other:?}"),
        }
    }

    /// Resolve all labels and freeze the image.
    ///
    /// # Panics
    /// Panics if any referenced label was never bound.
    pub fn finish(mut self) -> Program {
        self.close_func();
        for (at, label) in &self.patches {
            let target = self.labels[label.0 as usize].expect("unbound label referenced by a jump");
            match &mut self.insns[*at] {
                Insn::Jump(t) | Insn::JumpIfZero(t) | Insn::JumpIfNot(t) => *t = target,
                other => panic!("patch target is not a jump: {other:?}"),
            }
        }
        Program {
            insns: self.insns,
            funcs: self.funcs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_patches_forward_labels() {
        let mut b = ProgramBuilder::new();
        b.begin_func(0);
        b.emit(Insn::Enter(0));
        let end = b.new_label();
        b.emit(Insn::Const(0));
        b.jump_if_zero(end);
        b.emit(Insn::Nop);
        b.bind(end);
        b.emit(Insn::Halt);
        let p = b.finish();
        assert_eq!(p.fetch(2), Some(Insn::JumpIfZero(4)));
        assert_eq!(p.fetch(4), Some(Insn::Halt));
    }

    #[test]
    fn function_extents_close_properly() {
        let mut b = ProgramBuilder::new();
        let f1 = b.begin_func(2);
        b.emit(Insn::Enter(2));
        b.emit(Insn::Ret { retc: 0 });
        let f2 = b.begin_func(0);
        b.emit(Insn::Enter(0));
        b.emit(Insn::Halt);
        let p = b.finish();
        assert_eq!(p.func_at(f1).unwrap().argc, 2);
        assert_eq!(p.func_at(f1).unwrap().end, f2);
        assert_eq!(p.func_at(f2 + 1).unwrap().addr, f2);
        assert!(p.func_at(99).is_none());
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.jump(l);
        let _ = b.finish();
    }
}
